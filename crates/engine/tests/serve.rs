//! Integration tests for the `rankd serve` socket front-end: parity
//! with `HostRunner` over the real wire, protocol error handling, the
//! queue's backpressure as admission control, and graceful shutdown.
#![cfg(unix)]

use engine::client::{Client, ClientError};
use engine::protocol::{self, ErrorCode, FrameKind, ReadFrameError, WireOp, MAX_FRAME_DEFAULT};
use engine::server::{ServeConfig, Server, ServerControl, ServerStats};
use engine::{Engine, EngineConfig};
use listkit::gen;
use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, MinOp, XorOp};
use listkit::segmented::{self, SegOp};
use listrank::{Algorithm, HostRunner};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

/// A per-test socket path that cannot collide across parallel tests or
/// stale runs.
fn sock_path(tag: &str) -> PathBuf {
    let seq = SOCK_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rankd-test-{}-{tag}-{seq}.sock", std::process::id()))
}

struct Running {
    control: ServerControl,
    path: PathBuf,
    join: std::thread::JoinHandle<std::io::Result<ServerStats>>,
}

impl Running {
    fn stop(self) -> ServerStats {
        self.control.request_shutdown();
        self.join.join().expect("server thread").expect("server run")
    }
}

fn start(
    tag: &str,
    engine_cfg: EngineConfig,
    tune: impl FnOnce(ServeConfig) -> ServeConfig,
) -> Running {
    let path = sock_path(tag);
    let cfg = tune(ServeConfig::new(&path).with_drain_grace(Duration::from_secs(10)));
    let engine = Arc::new(Engine::new(engine_cfg));
    let server = Server::bind(engine, cfg).expect("bind test socket");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());
    Running { control, path, join }
}

fn small_engine() -> EngineConfig {
    EngineConfig::default().with_workers(2).with_inner_threads(1)
}

/// Raw-socket helper: write one frame, read one frame.
fn roundtrip(stream: &mut UnixStream, kind: u8, body: &[u8]) -> protocol::Frame {
    protocol::write_frame(stream, kind, body).expect("write frame");
    protocol::read_frame(stream, MAX_FRAME_DEFAULT).expect("read frame").expect("reply frame")
}

fn expect_error(frame: &protocol::Frame, code: ErrorCode) {
    assert_eq!(FrameKind::from_u8(frame.kind), Some(FrameKind::Error), "want error frame");
    let (_, decoded, msg) = protocol::decode_error(&frame.body).expect("decodable error");
    assert_eq!(decoded, Some(code), "unexpected error code (message: {msg})");
}

#[test]
fn every_operator_parity_with_host_runner() {
    let server = start("ops", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    let runner = HostRunner::new(Algorithm::ReidMiller);
    for &n in &[1usize, 2, 97, 4096, 20_000] {
        let list = gen::random_list(n, 0xC90 ^ n as u64);
        let i64s: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
        let u64s: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ i).collect();
        let affs: Vec<Affine> =
            (0..n as i64).map(|i| Affine::new((i % 5) - 2, (i % 7) - 3)).collect();
        let starts: Vec<bool> = (0..n).map(|v| v % 7 == 0).collect();

        assert_eq!(client.rank(&list).expect("rank").output, runner.rank(&list));
        assert_eq!(
            client.scan_add(&list, &i64s).expect("add").output,
            runner.scan(&list, &i64s, &AddOp)
        );
        assert_eq!(
            client.scan_max(&list, &i64s).expect("max").output,
            runner.scan(&list, &i64s, &MaxOp)
        );
        assert_eq!(
            client.scan_min(&list, &i64s).expect("min").output,
            runner.scan(&list, &i64s, &MinOp)
        );
        assert_eq!(
            client.scan_xor(&list, &u64s).expect("xor").output,
            runner.scan(&list, &u64s, &XorOp)
        );
        assert_eq!(
            client.scan_affine(&list, &affs).expect("affine").output,
            runner.scan(&list, &affs, &AffineOp)
        );
        let wrapped = segmented::wrap(&i64s, &starts);
        let seg_expected = segmented::unwrap_exclusive(
            &runner.scan(&list, &wrapped, &SegOp(AddOp)),
            &starts,
            &AddOp,
        );
        assert_eq!(
            client.segmented_add(&list, &i64s, &starts).expect("seg add").output,
            seg_expected
        );
        let wrapped_max = segmented::wrap(&i64s, &starts);
        let seg_max_expected = segmented::unwrap_exclusive(
            &runner.scan(&list, &wrapped_max, &SegOp(MaxOp)),
            &starts,
            &MaxOp,
        );
        assert_eq!(
            client.segmented_max(&list, &i64s, &starts).expect("seg max").output,
            seg_max_expected
        );
    }
    // Sharded-path routing over the wire agrees too.
    let big = gen::random_list(50_000, 7);
    assert_eq!(client.rank_sharded(&big).expect("rank sharded").output, runner.rank(&big));
    let vals: Vec<i64> = (0..50_000).map(|i| (i % 13) - 6).collect();
    assert_eq!(
        client.scan_add_sharded(&big, &vals).expect("scan sharded").output,
        runner.scan(&big, &vals, &AddOp)
    );
    drop(client);
    server.stop();
}

#[test]
fn multiple_concurrent_clients_all_get_correct_answers() {
    let server = start("multi", small_engine(), |c| c);
    let path = server.path.clone();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connect");
                let runner = HostRunner::new(Algorithm::ReidMiller);
                for j in 0..6 {
                    let n = 500 + 700 * t + 113 * j;
                    let list = gen::random_list(n, (t * 31 + j) as u64);
                    let vals: Vec<i64> = (0..n as i64).map(|i| (i % 19) - 9).collect();
                    assert_eq!(client.rank(&list).expect("rank").output, runner.rank(&list));
                    assert_eq!(
                        client.scan_add(&list, &vals).expect("scan").output,
                        runner.scan(&list, &vals, &AddOp)
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let stats = server.stop();
    assert_eq!(stats.connections_total, 4);
    assert!(stats.frames_in >= 4 + 4 * 12, "hello + 12 requests per client");
    assert_eq!(stats.connections_active, 0);
}

#[test]
fn malformed_frames_get_error_replies_without_killing_the_connection() {
    let server = start("malformed", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("connect raw");

    // A request before HELLO is answered (with a typed error), not
    // dropped.
    let reply = roundtrip(&mut stream, FrameKind::Stats as u8, &[]);
    expect_error(&reply, ErrorCode::ExpectedHello);

    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));

    // Unknown frame kind: typed error, connection lives.
    let reply = roundtrip(&mut stream, 0x7F, &[1, 2, 3]);
    expect_error(&reply, ErrorCode::UnknownKind);

    // Truncated RANK body (claims 4 vertices, carries none).
    let mut bad = vec![0u8]; // flags
    bad.extend_from_slice(&0u32.to_le_bytes()); // head
    bad.extend_from_slice(&4u32.to_le_bytes()); // n = 4, but no successors
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &bad);
    expect_error(&reply, ErrorCode::Malformed);

    // Structurally invalid successor array (out-of-range link).
    let mut invalid = vec![0u8];
    invalid.extend_from_slice(&0u32.to_le_bytes());
    invalid.extend_from_slice(&2u32.to_le_bytes());
    invalid.extend_from_slice(&9u32.to_le_bytes()); // next[0] = 9 out of range
    invalid.extend_from_slice(&1u32.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &invalid);
    expect_error(&reply, ErrorCode::Malformed);

    // Unknown operator byte.
    let list = gen::random_list(4, 1);
    let mut unknown_op = protocol::scan_body(&list, &[1i64, 2, 3, 4], WireOp::Add, false);
    unknown_op[1] = 0x63;
    let reply = roundtrip(&mut stream, FrameKind::Scan as u8, &unknown_op);
    expect_error(&reply, ErrorCode::UnknownOp);

    // Trailing garbage after a well-formed body.
    let mut trailing = protocol::rank_body(&list, false);
    trailing.extend_from_slice(&[0xAA, 0xBB]);
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &trailing);
    expect_error(&reply, ErrorCode::Malformed);

    // After all of that abuse, a valid request still works.
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::Output));
    let (_, ranks) = protocol::decode_output::<u64>(&reply.body).expect("output");
    assert_eq!(ranks, HostRunner::new(Algorithm::Serial).rank(&list));

    let stats = server.stop();
    assert!(stats.errors_sent >= 6);
}

#[test]
fn handshake_failures_close_the_connection() {
    let server = start("handshake", small_engine(), |c| c);

    // Version mismatch.
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    let mut hello = protocol::hello_body();
    hello[4] = 0xFF; // clobber the version field
    hello[5] = 0xFF;
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    expect_error(&reply, ErrorCode::VersionMismatch);
    assert!(
        matches!(protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT), Ok(None)),
        "server should close after a version mismatch"
    );

    // Bad magic.
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    let mut hello = protocol::hello_body();
    hello[0] ^= 0xFF;
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    expect_error(&reply, ErrorCode::BadMagic);
    assert!(matches!(protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT), Ok(None)));

    // The typed client surfaces the mismatch as a server error.
    // (Simulated by a too-large frame cap probe instead: connect still
    // succeeds with the well-formed handshake.)
    let client = Client::connect(&server.path).expect("well-formed handshake still accepted");
    drop(client);
    server.stop();
}

#[test]
fn oversized_frames_are_rejected_and_fatal() {
    let server = start("oversize", small_engine(), |c| c.with_max_frame(1024));

    // HELLO_OK advertises the cap this server actually enforces, not
    // the protocol default.
    let probe = Client::connect(&server.path).expect("connect typed");
    assert_eq!(probe.server_max_frame(), 1024);
    drop(probe);

    let mut stream = UnixStream::connect(&server.path).expect("connect");
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));

    // Claim a 2 MiB frame against a 1 KiB cap: the server answers with
    // FrameTooLarge and closes (framing is no longer trustworthy).
    use std::io::Write as _;
    stream.write_all(&(2u32 << 20).to_le_bytes()).expect("write oversized prefix");
    stream.write_all(&[FrameKind::Rank as u8]).expect("write kind");
    stream.flush().expect("flush");
    let reply = protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT).expect("read").expect("reply");
    expect_error(&reply, ErrorCode::FrameTooLarge);
    // Closed from the server side: clean EOF, or ECONNRESET when the
    // unread remainder of the oversized frame was still queued.
    assert!(matches!(
        protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT),
        Ok(None) | Err(ReadFrameError::Io(_))
    ));
    server.stop();
}

#[test]
fn client_surfaces_typed_server_errors() {
    let server = start("typed-errors", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    // A length mismatch the protocol can express but submit validation
    // rejects: 4-vertex list, 3 values. Build the body by hand (the
    // typed client API makes this impossible to construct).
    let list = gen::random_list(4, 2);
    let mut body = Vec::new();
    body.push(0u8);
    body.push(WireOp::Add as u8);
    body.extend_from_slice(&list.head().to_le_bytes());
    body.extend_from_slice(&4u32.to_le_bytes());
    for &s in list.links() {
        body.extend_from_slice(&s.to_le_bytes());
    }
    // Only 3 values → decoder sees a truncated value array.
    for v in [1i64, 2, 3] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    let mut stream = UnixStream::connect(&server.path).expect("raw connect");
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));
    let reply = roundtrip(&mut stream, FrameKind::Scan as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // The typed client keeps working on its own connection, and typed
    // errors decode into ClientError::Server with the right code.
    match client.stats() {
        Ok(stats) => assert!(stats.errors_sent >= 1),
        Err(e) => panic!("stats after another client's error: {e}"),
    }
    drop(client);
    server.stop();
}

#[test]
fn backpressure_blocks_flooding_clients_instead_of_failing_them() {
    // A deliberately tiny engine: one worker, a one-slot queue. Six
    // clients each push six jobs as fast as the socket allows; every
    // job must complete (blocking submit = admission control), and the
    // engine must never report a non-blocking rejection.
    let cfg = EngineConfig::default()
        .with_workers(1)
        .with_inner_threads(1)
        .with_queue_capacity(1)
        .with_batching(1, 1);
    let server = start("flood", cfg, |c| c);
    let path = server.path.clone();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connect");
                let runner = HostRunner::new(Algorithm::ReidMiller);
                for j in 0..6 {
                    let n = 5_000 + 997 * t + j;
                    let list = gen::random_list(n, (t * 7 + j) as u64);
                    assert_eq!(client.rank(&list).expect("rank").output, runner.rank(&list));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("flooding client");
    }
    let mut probe = Client::connect(&server.path).expect("probe");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.engine_completed, 36, "every flooded job completed");
    drop(probe);
    let server_stats = server.stop();
    assert_eq!(server_stats.busy_rejected, 0);
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let server = start("drain", small_engine(), |c| c);

    // Client B gets a big job in flight…
    let path_b = server.path.clone();
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(&path_b).expect("connect B");
        let list = gen::random_list(400_000, 0xD12A);
        let ranks = client.rank(&list).expect("in-flight job must complete").output;
        assert_eq!(ranks, HostRunner::new(Algorithm::ReidMiller).rank(&list));
    });
    // …while client A asks the daemon to shut down.
    std::thread::sleep(Duration::from_millis(30));
    let client_a = Client::connect(&server.path).expect("connect A");
    client_a.shutdown().expect("SHUTDOWN acknowledged");

    worker.join().expect("client B");
    let stats = server.join.join().expect("server thread").expect("server run");
    assert_eq!(stats.connections_active, 0, "all handlers drained");
    // The socket file is gone; a new connection is refused.
    assert!(Client::connect(&server.path).is_err(), "daemon is down");
}

#[test]
fn busy_rejection_at_max_clients() {
    let server = start("busy", small_engine(), |c| c.with_max_clients(1));
    let first = Client::connect(&server.path).expect("first client");
    // Give the accept loop a beat to register the first connection.
    std::thread::sleep(Duration::from_millis(100));
    match Client::connect(&server.path) {
        Err(e) => assert_eq!(e.server_code(), Some(ErrorCode::Busy), "got {e}"),
        Ok(_) => panic!("second client should be rejected at max-clients 1"),
    }
    drop(first);
    let stats = server.stop();
    assert_eq!(stats.busy_rejected, 1);
    assert_eq!(stats.connections_total, 1);
}

#[test]
fn stats_frame_reports_engine_and_serving_counters() {
    let server = start("stats", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    let list = gen::random_list(1000, 3);
    client.rank(&list).expect("rank");
    client.scan_add(&list, &vec![1i64; 1000]).expect("scan");
    let stats = client.stats().expect("stats");
    assert!(stats.engine_completed >= 2);
    assert!(stats.engine_elements >= 2000);
    assert_eq!(stats.connections_active, 1);
    assert!(stats.frames_in >= 3);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert!(stats.text.contains("jobs:"), "rendered engine report present:\n{}", stats.text);
    assert!(stats.text.contains("connections:"), "serving section present:\n{}", stats.text);
    drop(client);
    server.stop();
}

#[test]
fn serve_secs_deadline_expires_on_its_own() {
    let path = sock_path("deadline");
    let cfg = ServeConfig::new(&path)
        .with_serve_secs(Some(1))
        .with_drain_grace(Duration::from_millis(200));
    let engine = Arc::new(Engine::new(small_engine()));
    let server = Server::bind(engine, cfg).expect("bind");
    let t0 = Instant::now();
    let stats = server.run().expect("run to deadline");
    let elapsed = t0.elapsed();
    assert!(elapsed >= Duration::from_secs(1), "served the full window");
    assert!(elapsed < Duration::from_secs(5), "exited promptly after the deadline");
    assert_eq!(stats.connections_total, 0);
    assert!(!path.exists(), "socket file removed");
}

#[test]
fn stalled_mid_frame_client_cannot_block_shutdown() {
    // A client that sends a partial frame and then goes silent must
    // not pin its handler (and with it, the daemon's shutdown)
    // forever: once the drain grace expires, the half-received frame
    // is abandoned and the handler exits.
    let path = sock_path("stall");
    let cfg = ServeConfig::new(&path).with_drain_grace(Duration::from_millis(300));
    let engine = Arc::new(Engine::new(small_engine()));
    let server = Server::bind(engine, cfg).expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    use std::io::Write as _;
    let mut stream = UnixStream::connect(&path).expect("connect");
    protocol::write_frame(&mut stream, FrameKind::Hello as u8, &protocol::hello_body())
        .expect("hello");
    let _ = protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT).expect("hello ok");
    // Start a RANK frame: length prefix only, then stall.
    stream.write_all(&100u32.to_le_bytes()).expect("partial frame");
    stream.flush().expect("flush");

    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    control.request_shutdown();
    let stats = join.join().expect("server thread").expect("server run");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown must not wait on a stalled mid-frame client"
    );
    assert_eq!(stats.connections_active, 0);
    drop(stream);
}

#[test]
fn bind_refuses_to_steal_a_live_socket_but_reclaims_a_stale_one() {
    let server = start("bindsafe", small_engine(), |c| c);
    // A second server on the same live path must fail AddrInUse, not
    // silently unlink the running daemon's socket.
    let engine2 = Arc::new(Engine::new(small_engine()));
    match Server::bind(engine2, ServeConfig::new(&server.path)) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse, "got {e}"),
        Ok(_) => panic!("second bind on a live socket must fail"),
    }
    // The first daemon is unharmed.
    let mut client = Client::connect(&server.path).expect("original daemon still reachable");
    client.stats().expect("still serving");
    drop(client);
    server.stop();

    // A *stale* file (daemon gone, file left behind) is reclaimed.
    let stale = sock_path("stale");
    {
        let e = Arc::new(Engine::new(small_engine()));
        let s = Server::bind(e, ServeConfig::new(&stale)).expect("bind");
        drop(s); // bound but never run: socket file stays behind
    }
    assert!(stale.exists(), "stale socket file left behind");
    let engine3 = Arc::new(Engine::new(small_engine()));
    let reclaimed = Server::bind(engine3, ServeConfig::new(&stale)).expect("reclaim stale socket");
    let control = reclaimed.control();
    let join = std::thread::spawn(move || reclaimed.run());
    Client::connect(&stale).expect("reclaimed daemon serves");
    control.request_shutdown();
    join.join().expect("server thread").expect("run");
}

#[test]
fn client_that_never_reads_its_reply_cannot_block_shutdown() {
    // The reply to a 300k-vertex rank (~2.4 MB) far exceeds the socket
    // buffer, so the handler blocks writing it while this client
    // refuses to read. Shutdown must still complete: once the drain
    // grace expires the stalled write is abandoned and the handler
    // exits.
    let path = sock_path("noread");
    let cfg = ServeConfig::new(&path).with_drain_grace(Duration::from_millis(300));
    let engine = Arc::new(Engine::new(small_engine()));
    let server = Server::bind(engine, cfg).expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = UnixStream::connect(&path).expect("connect");
    protocol::write_frame(&mut stream, FrameKind::Hello as u8, &protocol::hello_body())
        .expect("hello");
    let _ = protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT).expect("hello ok");
    let list = gen::random_list(300_000, 0xBAD);
    protocol::write_frame(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false))
        .expect("rank request");
    // Give the job time to execute and the reply write time to fill
    // the socket buffer and stall… then never read.
    std::thread::sleep(Duration::from_millis(500));

    let t0 = Instant::now();
    control.request_shutdown();
    let stats = join.join().expect("server thread").expect("server run");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown must not wait on a client that never drains its replies"
    );
    assert_eq!(stats.connections_active, 0);
    drop(stream);
}

// ---- resident dataset store (protocol v3) --------------------------

/// A small adversarial topology zoo for the wire-level handle parity
/// tests (mirrors `tests/differential.rs`, scaled for socket traffic).
fn wire_zoo(n: usize) -> Vec<(String, listkit::LinkedList)> {
    use listkit::gen::Layout;
    let seed = 0xC90 ^ n as u64;
    let mut out = vec![
        ("chain".to_string(), gen::sequential_list(n)),
        ("reversed".to_string(), gen::list_with_layout(n, Layout::Reversed, seed)),
        ("random".to_string(), gen::list_with_layout(n, Layout::Random, seed)),
        ("blocked".to_string(), gen::list_with_layout(n, Layout::Blocked(3), seed)),
    ];
    if n > 71 {
        // 71 is prime and divides none of the zoo sizes, so the strided
        // layout stays a permutation.
        out.push(("strided".to_string(), gen::list_with_layout(n, Layout::Strided(71), seed)));
    }
    out
}

#[test]
fn handle_queries_are_byte_identical_to_inline_for_every_op() {
    // The wire half of the handle differential oracle: every
    // handle-routed op kind must produce byte-identical output to the
    // same op shipped inline, across the topology zoo and the
    // off-by-one sizes.
    let server = start("handle-parity", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    for &n in &[1usize, 2, 3, 127, 1024, 1025] {
        for (name, list) in wire_zoo(n) {
            let i64s: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
            let u64s: Vec<u64> =
                (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ i).collect();
            let affs: Vec<Affine> =
                (0..n as i64).map(|i| Affine::new((i % 5) - 2, (i % 7) - 3)).collect();
            let starts: Vec<bool> = (0..n).map(|v| v % 7 == 0).collect();

            let receipt = client.put(&list).expect("put");
            let h = receipt.handle;
            assert!(receipt.bytes >= 4 * n as u64, "receipt charges at least the links");

            assert_eq!(
                client.rank_h(h).expect("rank_h").output,
                client.rank(&list).expect("rank").output,
                "rank diverged on {name} n={n}"
            );
            assert_eq!(
                client.scan_add_h(h, &i64s).expect("add_h").output,
                client.scan_add(&list, &i64s).expect("add").output,
                "add diverged on {name} n={n}"
            );
            assert_eq!(
                client.scan_max_h(h, &i64s).expect("max_h").output,
                client.scan_max(&list, &i64s).expect("max").output,
                "max diverged on {name} n={n}"
            );
            assert_eq!(
                client.scan_min_h(h, &i64s).expect("min_h").output,
                client.scan_min(&list, &i64s).expect("min").output,
                "min diverged on {name} n={n}"
            );
            assert_eq!(
                client.scan_xor_h(h, &u64s).expect("xor_h").output,
                client.scan_xor(&list, &u64s).expect("xor").output,
                "xor diverged on {name} n={n}"
            );
            assert_eq!(
                client.scan_affine_h(h, &affs).expect("affine_h").output,
                client.scan_affine(&list, &affs).expect("affine").output,
                "affine diverged on {name} n={n}"
            );
            assert_eq!(
                client.segmented_add_h(h, &i64s, &starts).expect("seg_add_h").output,
                client.segmented_add(&list, &i64s, &starts).expect("seg_add").output,
                "segmented add diverged on {name} n={n}"
            );
            assert_eq!(
                client.segmented_max_h(h, &i64s, &starts).expect("seg_max_h").output,
                client.segmented_max(&list, &i64s, &starts).expect("seg_max").output,
                "segmented max diverged on {name} n={n}"
            );
            client.drop_handle(h).expect("drop");
        }
    }
    // Sharded routing by handle agrees with sharded routing inline.
    let big = gen::random_list(50_000, 7);
    let h = client.put(&big).expect("put big").handle;
    assert_eq!(
        client.rank_h_sharded(h).expect("rank_h sharded").output,
        client.rank_sharded(&big).expect("rank sharded").output
    );
    let vals: Vec<i64> = (0..50_000).map(|i| (i % 13) - 6).collect();
    assert_eq!(
        client.scan_add_h_sharded(h, &vals).expect("scan_h sharded").output,
        client.scan_add_sharded(&big, &vals).expect("scan sharded").output
    );

    // The store counters saw all of it: every handle query was a hit.
    let v2 = client.stats_v2().expect("stats_v2");
    assert!(v2.store.hits > 0, "handle queries hit the store");
    assert_eq!(v2.store.misses, 0, "no handle query missed");
    assert_eq!(v2.store.hits, v2.store.lookups, "hits + misses == lookups");
    assert!(v2.store.puts > 0);
    drop(client);
    server.stop();
}

#[test]
fn stale_and_foreign_handles_fail_typed_on_a_surviving_connection() {
    let server = start("handle-stale", small_engine(), |c| c);
    let mut a = Client::connect(&server.path).expect("connect a");
    let list = gen::random_list(64, 5);
    let h = a.put(&list).expect("put").handle;

    // Another connection cannot see (or drop) a's handle.
    let mut b = Client::connect(&server.path).expect("connect b");
    assert_eq!(
        b.rank_h(h).expect_err("foreign handle").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    assert_eq!(
        b.drop_handle(h).expect_err("foreign drop").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    b.rank(&list).expect("b's connection survives the stale handle");

    // A handle that was never issued.
    assert_eq!(
        a.rank_h(0xDEAD_BEEF).expect_err("unknown handle").server_code(),
        Some(ErrorCode::StaleHandle)
    );

    // Use-after-DROP and double-DROP.
    a.drop_handle(h).expect("first drop succeeds");
    assert_eq!(
        a.rank_h(h).expect_err("use after drop").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    assert_eq!(
        a.scan_add_h(h, &[1i64; 64]).expect_err("scan after drop").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    assert_eq!(
        a.drop_handle(h).expect_err("double drop").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    a.rank(&list).expect("a's connection survives all of it");

    // Connection teardown reaps b's datasets — and only b's.
    let ha = a.put(&list).expect("fresh put on a").handle;
    let hb = b.put(&list).expect("put on b").handle;
    drop(b);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        a.rank_h(hb).expect_err("handle died with b").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    a.rank_h(ha).expect("a's dataset survived b's teardown");
    let v2 = a.stats_v2().expect("stats_v2");
    assert_eq!(v2.store.resident_count, 1, "only b's dataset was reaped");
    drop(a);
    server.stop();
}

#[test]
fn malformed_put_and_handle_frames_recover_with_typed_errors() {
    let server = start("put-malformed", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("connect raw");
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));

    // Truncated PUT (claims 4 vertices, carries none).
    let mut truncated = vec![0u8];
    truncated.extend_from_slice(&0u32.to_le_bytes());
    truncated.extend_from_slice(&4u32.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &truncated);
    expect_error(&reply, ErrorCode::Malformed);

    // Reserved flag bits must be zero.
    let list = gen::random_list(4, 1);
    let mut flagged = protocol::put_body(&list);
    flagged[0] = 0x01;
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &flagged);
    expect_error(&reply, ErrorCode::Malformed);

    // Oversized body: trailing bytes after a well-formed PUT.
    let mut trailing = protocol::put_body(&list);
    trailing.push(0xAA);
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &trailing);
    expect_error(&reply, ErrorCode::Malformed);

    // Structurally invalid successor array (out-of-range link).
    let mut invalid = vec![0u8];
    invalid.extend_from_slice(&0u32.to_le_bytes());
    invalid.extend_from_slice(&2u32.to_le_bytes());
    invalid.extend_from_slice(&9u32.to_le_bytes());
    invalid.extend_from_slice(&1u32.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &invalid);
    expect_error(&reply, ErrorCode::Malformed);

    // Truncated RANK_H (handle cut short).
    let reply = roundtrip(&mut stream, FrameKind::RankH as u8, &[0u8, 1, 2, 3]);
    expect_error(&reply, ErrorCode::Malformed);

    // A real PUT on the abused connection still works…
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &protocol::put_body(&list));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::PutOk));
    let (handle, bytes) = protocol::decode_put_ok(&reply.body).expect("put_ok");
    assert!(bytes > 0);

    // …a SCAN_H whose value count disagrees with the resident dataset
    // fails submit validation, typed, without killing the connection…
    let body = protocol::scan_h_body(handle, &[1i64, 2, 3], protocol::WireOp::Add, false);
    let reply = roundtrip(&mut stream, FrameKind::ScanH as u8, &body);
    expect_error(&reply, ErrorCode::InvalidRequest);

    // …and the handle still resolves afterwards.
    let reply =
        roundtrip(&mut stream, FrameKind::RankH as u8, &protocol::rank_h_body(handle, false));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::Output));
    let (_, ranks) = protocol::decode_output::<u64>(&reply.body).expect("output");
    assert_eq!(ranks, HostRunner::new(Algorithm::Serial).rank(&list));

    let stats = server.stop();
    assert!(stats.errors_sent >= 6);
}

#[test]
fn put_past_budget_is_store_full_and_lru_eviction_frees_idle_datasets() {
    // Budget fits two 1000-vertex datasets (4*1000 + 96 = 4096 bytes
    // each) but not three; a dataset bigger than the whole budget can
    // never be admitted.
    let server = start("budget", small_engine(), |c| c.with_store_budget(10_000));
    let mut client = Client::connect(&server.path).expect("connect");

    let big = gen::random_list(5_000, 1);
    assert_eq!(
        client.put(&big).expect_err("exceeds whole budget").server_code(),
        Some(ErrorCode::StoreFull)
    );
    client.rank(&big).expect("connection survives StoreFull");

    let h1 = client.put(&gen::random_list(1_000, 1)).expect("first fits").handle;
    let h2 = client.put(&gen::random_list(1_000, 2)).expect("second fits").handle;
    let h3 = client.put(&gen::random_list(1_000, 3)).expect("third evicts the LRU").handle;

    // h1 was least recently used and idle → evicted; h2 and h3 live.
    assert_eq!(
        client.rank_h(h1).expect_err("evicted handle").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    client.rank_h(h2).expect("h2 still resident");
    client.rank_h(h3).expect("h3 still resident");

    let v2 = client.stats_v2().expect("stats_v2");
    assert_eq!(v2.store.evictions, 1);
    assert_eq!(v2.store.put_rejected, 1);
    assert_eq!(v2.store.resident_count, 2);
    assert!(v2.store.resident_bytes <= 10_000, "budget is never exceeded");
    drop(client);
    server.stop();
}

#[test]
fn v2_handshake_is_accepted_and_v1_rejected() {
    // Protocol v3 and v4 are purely additive over v2, so a v2 client
    // must still connect and use the v2 surface; v1 predates the
    // OUTPUT metadata change and stays rejected.
    let server = start("versions", small_engine(), |c| c);

    let mut stream = UnixStream::connect(&server.path).expect("connect v2");
    let mut hello = protocol::hello_body();
    hello[4] = 2; // version = 2
    hello[5] = 0;
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));
    let (version, _) = protocol::decode_hello_ok(&reply.body).expect("hello_ok");
    assert_eq!(version, protocol::VERSION, "server advertises its own version");
    let list = gen::random_list(8, 3);
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::Output));

    // A v3 client (handles but no mutation plane) is accepted too: the
    // v4 additions never moved MIN_VERSION, which stays at 2.
    assert_eq!(protocol::MIN_VERSION, 2, "v4 did not raise the compatibility floor");
    let mut stream = UnixStream::connect(&server.path).expect("connect v3");
    let mut hello = protocol::hello_body();
    hello[4] = 3; // version = 3
    hello[5] = 0;
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));
    let list3 = gen::random_list(6, 4);
    let reply = roundtrip(&mut stream, FrameKind::Put as u8, &protocol::put_body(&list3));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::PutOk), "v3 surface still works");

    let mut stream = UnixStream::connect(&server.path).expect("connect v1");
    let mut hello = protocol::hello_body();
    hello[4] = 1; // version = 1
    hello[5] = 0;
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    expect_error(&reply, ErrorCode::VersionMismatch);
    assert!(
        matches!(protocol::read_frame(&mut stream, MAX_FRAME_DEFAULT), Ok(None)),
        "v1 connection is closed"
    );
    server.stop();
}

// ---- dynamic lists / mutation plane (protocol v4) ------------------

/// The live-socket half of the mutation differential oracle: drive
/// random (but always valid) edit batches through `Client::mutate`
/// while maintaining a client-side [`MutableList`] mirror, and demand
/// that every post-mutation handle query is byte-identical to a serial
/// from-scratch rank/scan of the mirror's snapshot.
#[test]
fn mutations_then_handle_queries_are_byte_identical_to_serial() {
    use listkit::dynamic::{Edit, MutableList};
    let server = start("mutate-parity", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    let serial = HostRunner::new(Algorithm::Serial);

    for &n in &[4usize, 127, 1025, 20_000] {
        for (name, list) in wire_zoo(n) {
            let handle = client.put(&list).expect("put").handle;
            let mut mirror = MutableList::from_list(&list);
            let mut rng = 0x5EED_0C90u64 ^ (n as u64) << 7;
            let mut pick = move |m: u64| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (rng >> 33) % m.max(1)
            };
            for _ in 0..4 {
                let len = mirror.len() as u64;
                let a = pick(len) as u32;
                let mut b = pick(len) as u32;
                if b == a {
                    b = (a + 1) % len as u32;
                }
                let after = if pick(8) == 0 { None } else { Some(b) };
                let edits = [
                    Edit::Splice { first: a, last: a, after },
                    Edit::Delete { v: pick(len) as u32 },
                    Edit::Append { count: 1 + pick(5) as u32 },
                ];
                mirror.apply(&edits).expect("batch valid against the mirror");
                let ok = client.mutate(handle, &edits).expect("MUTATE accepted");
                assert_eq!(ok.applied as usize, edits.len(), "{name} n={n}: whole batch");
                assert_eq!(ok.len as usize, mirror.len(), "{name} n={n}: length parity");

                let snapshot = mirror.snapshot();
                assert_eq!(
                    client.rank_h(handle).expect("rank_h").output,
                    serial.rank(&snapshot),
                    "rank diverged after mutation on {name} n={n}"
                );
                let vals: Vec<i64> = (0..mirror.len() as i64).map(|i| (i % 17) - 8).collect();
                assert_eq!(
                    client.scan_add_h(handle, &vals).expect("scan_h").output,
                    serial.scan(&snapshot, &vals, &AddOp),
                    "scan diverged after mutation on {name} n={n}"
                );
            }
            client.drop_handle(handle).expect("drop");
        }
    }

    // The mutation plane's gauges saw the traffic.
    let v2 = client.stats_v2().expect("stats_v2");
    assert!(v2.mutate.mutations > 0, "mutation batches counted");
    assert_eq!(v2.mutate.edits, v2.mutate.mutations * 3, "three edits per batch");
    assert_eq!(
        v2.mutate.incremental + v2.mutate.full,
        0,
        "no sharded artifacts existed at these sizes, so no maintenance passes"
    );
    drop(client);
    server.stop();
}

#[test]
fn adversarial_mutations_fail_typed_on_a_surviving_connection() {
    use listkit::dynamic::Edit;
    let server = start("mutate-adversarial", small_engine(), |c| c);
    let mut a = Client::connect(&server.path).expect("connect a");
    let list = gen::random_list(64, 9);
    let h = a.put(&list).expect("put").handle;
    let baseline = a.rank_h(h).expect("baseline rank").output;

    // Foreign handle: another connection cannot mutate a's dataset.
    let mut b = Client::connect(&server.path).expect("connect b");
    assert_eq!(
        b.delete(h, 0).expect_err("foreign mutate").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    b.rank(&list).expect("b survives the foreign mutation attempt");

    // A handle that was never issued.
    assert_eq!(
        a.append(0xDEAD_BEEF, 1).expect_err("unknown handle").server_code(),
        Some(ErrorCode::StaleHandle)
    );

    // Empty batch.
    assert_eq!(
        a.mutate(h, &[]).expect_err("empty batch").server_code(),
        Some(ErrorCode::BadMutation)
    );

    // Out-of-range splice target and out-of-range delete.
    assert_eq!(
        a.splice(h, 999, 999, None).expect_err("splice out of range").server_code(),
        Some(ErrorCode::BadMutation)
    );
    assert_eq!(
        a.delete(h, 10_000).expect_err("delete out of range").server_code(),
        Some(ErrorCode::BadMutation)
    );

    // Splicing a run in front of a vertex inside that run.
    assert_eq!(
        a.splice(h, 5, 5, Some(5)).expect_err("target in run").server_code(),
        Some(ErrorCode::BadMutation)
    );

    // Rejected batches are atomic over the wire: a valid edit followed
    // by an invalid one leaves the dataset byte-identical.
    let poisoned = [Edit::Append { count: 3 }, Edit::Delete { v: 10_000 }];
    assert_eq!(
        a.mutate(h, &poisoned).expect_err("poisoned batch").server_code(),
        Some(ErrorCode::BadMutation)
    );
    assert_eq!(
        a.rank_h(h).expect("handle still serves").output,
        baseline,
        "rejected batch must not change the dataset"
    );

    // A raw truncated MUTATE body is a framing error, not a mutation
    // error, and the raw connection survives it.
    let mut stream = UnixStream::connect(&server.path).expect("connect raw");
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));
    let reply = roundtrip(&mut stream, FrameKind::Mutate as u8, &[1, 2, 3]);
    expect_error(&reply, ErrorCode::Malformed);
    let reply = roundtrip(&mut stream, FrameKind::Stats as u8, &[]);
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::StatsOk));

    // Mutate-after-drop (and a valid mutation on a live handle works).
    a.append(h, 2).expect("valid mutation on the abused connection");
    a.drop_handle(h).expect("drop");
    assert_eq!(
        a.delete(h, 0).expect_err("mutate after drop").server_code(),
        Some(ErrorCode::StaleHandle)
    );
    a.rank(&list).expect("a's connection survives everything");
    drop(a);
    drop(b);
    server.stop();
}

#[test]
fn client_error_read_frame_surfaces() {
    // Pure codec check used by the docs: an oversized prefix read with
    // a small cap fails as TooLarge, not as a misdecoded frame.
    let mut bytes: &[u8] = &[0xFF, 0xFF, 0xFF, 0x7F, 0x02];
    match protocol::read_frame(&mut bytes, 1024) {
        Err(ReadFrameError::TooLarge { len, max }) => {
            assert_eq!(len, 0x7FFF_FFFF);
            assert_eq!(max, 1024);
        }
        other => panic!("want TooLarge, got {other:?}"),
    }
    // And ClientError's Display paths don't panic.
    let e = ClientError::Server { code: 8, kind: ErrorCode::from_u16(8), message: "busy".into() };
    assert!(e.to_string().contains("busy"));
}

// ---------------------------------------------------------------------------
// Resilience: deadlines, shedding, panic isolation, signals, fault audit.
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_expires_typed_and_connection_survives() {
    let server = start("deadline-zero", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    let list = gen::random_list(2000, 0xDEAD);

    // deadline_ms = 0 has always "waited too long" by the time the
    // worker dequeues it — a deterministic expiry.
    match client.rank_with_deadline(&list, 0) {
        Err(e) => assert_eq!(e.server_code(), Some(ErrorCode::DeadlineExceeded), "got {e}"),
        Ok(_) => panic!("a zero deadline must expire in the queue"),
    }
    // A generous deadline sails through, byte-identical, on the SAME
    // connection — the expiry was a typed reply, not a hangup.
    let served = client.rank_with_deadline(&list, 60_000).expect("generous deadline");
    assert_eq!(served.output, HostRunner::new(Algorithm::ReidMiller).rank(&list));
    // The expiry is visible in the resilience gauges.
    let v2 = client.stats_v2().expect("stats_v2");
    assert!(v2.fault.deadline_expired >= 1, "expiry counted: {:?}", v2.fault);
    drop(client);
    server.stop();
}

#[test]
fn deadline_by_handle_and_mixed_flag_bits_decode_correctly() {
    let server = start("deadline-h", small_engine(), |c| c);
    let mut client = Client::connect(&server.path).expect("connect");
    let list = gen::random_list(3000, 0xD11);
    let handle = client.put(&list).expect("put").handle;
    let served = client.rank_h_with_deadline(handle, 60_000).expect("rank_h + deadline");
    assert_eq!(served.output, HostRunner::new(Algorithm::ReidMiller).rank(&list));

    // FLAG_SHARDED | FLAG_DEADLINE together: both decode, answer is
    // still byte-identical.
    let body = protocol::rank_h_body_deadline(handle, true, Some(60_000));
    let served = client.request_encoded::<u64>(FrameKind::RankH, &body).expect("both flags");
    assert_eq!(served.output, HostRunner::new(Algorithm::ReidMiller).rank(&list));
    client.drop_handle(handle).expect("drop");
    drop(client);
    server.stop();
}

#[test]
fn deadline_flag_requires_v5_handshake() {
    let server = start("deadline-v4", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("raw connect");

    // Handshake as a v4 client (the newest version before deadlines).
    let mut hello = Vec::new();
    hello.extend_from_slice(&protocol::MAGIC.to_le_bytes());
    hello.extend_from_slice(&4u16.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &hello);
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));

    // A deadline-flagged request on a v4-negotiated connection is
    // Malformed — the flag bit is a v5 construct.
    let list = gen::random_list(64, 1);
    let body = protocol::rank_body_deadline(&list, false, Some(1000));
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // The connection survives, and the un-flagged path still works.
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::Output));
    drop(stream);
    server.stop();
}

#[test]
fn queue_shedding_returns_overloaded_under_flood() {
    // One worker, one-slot queue, shed watermark at depth 1: while the
    // worker is busy and one job is parked, any further request must be
    // refused with a typed OVERLOADED (not blocked, not dropped).
    let cfg = EngineConfig::default()
        .with_workers(1)
        .with_inner_threads(1)
        .with_queue_capacity(1)
        .with_batching(1, 1);
    let server = start("shed-queue", cfg, |c| c.with_shed_queue_depth(1));
    let path = server.path.clone();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connect");
                let runner = HostRunner::new(Algorithm::ReidMiller);
                let mut shed = 0u64;
                for j in 0..40 {
                    let list = gen::random_list(20_000, (t * 13 + j) as u64);
                    match client.rank(&list) {
                        Ok(served) => assert_eq!(served.output, runner.rank(&list)),
                        Err(e) => {
                            assert_eq!(
                                e.server_code(),
                                Some(ErrorCode::Overloaded),
                                "only typed shedding may fail a flooder: {e}"
                            );
                            shed += 1;
                        }
                    }
                }
                shed
            })
        })
        .collect();
    let shed: u64 = threads.into_iter().map(|t| t.join().expect("flooder")).sum();
    assert!(shed >= 1, "watermark at depth 1 under a 4-client flood must shed");
    // The daemon is healthy after the storm.
    let mut probe = Client::connect(&server.path).expect("probe");
    let list = gen::random_list(500, 9);
    assert_eq!(
        probe.rank(&list).expect("post-flood rank").output,
        HostRunner::new(Algorithm::ReidMiller).rank(&list)
    );
    let v2 = probe.stats_v2().expect("stats_v2");
    assert_eq!(v2.fault.shed_queue, shed, "gauge counts every queue shed");
    drop(probe);
    server.stop();
}

#[test]
fn store_shedding_returns_overloaded_before_admission() {
    // A 1-byte pressure watermark: the first PUT lands (store is
    // empty), every further PUT is refused typed while the resident
    // bytes stay above the mark.
    let server = start("shed-store", small_engine(), |c| c.with_shed_store_bytes(1));
    let mut client = Client::connect(&server.path).expect("connect");
    let list = gen::random_list(1000, 4);
    let handle = client.put(&list).expect("first PUT under the watermark").handle;
    match client.put(&list) {
        Err(e) => {
            assert_eq!(e.server_code(), Some(ErrorCode::Overloaded), "got {e}");
            assert!(e.to_string().contains("retry_after_ms"), "retry hint present: {e}");
        }
        Ok(_) => panic!("second PUT must shed at a 1-byte watermark"),
    }
    // Same connection: resident queries still work, and dropping the
    // dataset re-opens admission.
    let served = client.rank_h(handle).expect("resident query during pressure");
    assert_eq!(served.output, HostRunner::new(Algorithm::ReidMiller).rank(&list));
    client.drop_handle(handle).expect("drop");
    let handle = client.put(&list).expect("admission re-opens once pressure clears").handle;
    client.drop_handle(handle).expect("drop");
    let v2 = client.stats_v2().expect("stats_v2");
    assert_eq!(v2.fault.shed_store, 1);
    drop(client);
    server.stop();
}

#[test]
fn panicking_job_is_isolated_to_a_typed_error() {
    // exec_panic = 1.0: every job panics inside the worker. The panic
    // must surface as a typed INTERNAL_ERROR to the one caller, the
    // connection must survive, and the engine must keep serving.
    let plane = Arc::new(engine::FaultPlane::new(engine::FaultConfig {
        exec_panic: 1.0,
        ..engine::FaultConfig::default()
    }));
    let server = start("panic-isolation", small_engine().with_fault(Arc::clone(&plane)), |c| {
        c.with_fault(Arc::clone(&plane))
    });
    let mut client = Client::connect(&server.path).expect("connect");
    let list = gen::random_list(500, 5);
    for _ in 0..3 {
        match client.rank(&list) {
            Err(e) => assert_eq!(e.server_code(), Some(ErrorCode::InternalError), "got {e}"),
            Ok(_) => panic!("every job must panic at exec_panic=1.0"),
        }
    }
    // Non-job frames still answer on the same connection, and the
    // recovery gauges saw every panic.
    let v2 = client.stats_v2().expect("stats_v2 after panics");
    assert_eq!(v2.fault.injected_exec_panics, 3);
    assert_eq!(v2.fault.panics_recovered, 3);
    drop(client);
    server.stop();
}

#[test]
fn worker_panics_respawn_and_jobs_keep_completing() {
    // worker_panic = 1.0: the worker thread blows up between batches,
    // every time. The respawn loop must keep the lane staffed and
    // every job must still complete correctly.
    let plane = Arc::new(engine::FaultPlane::new(engine::FaultConfig {
        worker_panic: 1.0,
        ..engine::FaultConfig::default()
    }));
    let server = start("respawn", small_engine().with_fault(Arc::clone(&plane)), |c| {
        c.with_fault(Arc::clone(&plane))
    });
    let mut client = Client::connect(&server.path).expect("connect");
    let runner = HostRunner::new(Algorithm::ReidMiller);
    for i in 0..4 {
        let list = gen::random_list(1000 + i * 37, i as u64);
        assert_eq!(client.rank(&list).expect("rank across respawns").output, runner.rank(&list));
    }
    let v2 = client.stats_v2().expect("stats_v2");
    assert!(v2.fault.workers_respawned >= 1, "respawns counted: {:?}", v2.fault);
    drop(client);
    server.stop();
}

#[test]
fn client_killed_mid_reply_leaves_daemon_serving() {
    // A client that hangs up after sending its request (before reading
    // the reply) must cost the daemon nothing but that one connection:
    // the reply write fails, the handler exits, everyone else keeps
    // getting answers. With SIGPIPE mishandled this kills the process.
    let server = start("hangup", small_engine(), |c| c);
    for i in 0..3 {
        let mut stream = UnixStream::connect(&server.path).expect("raw connect");
        let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
        assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));
        let list = gen::random_list(200_000, i);
        protocol::write_frame(
            &mut stream,
            FrameKind::Rank as u8,
            &protocol::rank_body(&list, false),
        )
        .expect("send request");
        // Hang up without reading the (large) reply.
        drop(stream);
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(&server.path).expect("daemon still accepting");
    let list = gen::random_list(1500, 77);
    assert_eq!(
        client.rank(&list).expect("daemon still serving").output,
        HostRunner::new(Algorithm::ReidMiller).rank(&list)
    );
    drop(client);
    server.stop();
}

#[test]
fn sigterm_drains_the_rankd_daemon_gracefully() {
    // The real binary: SIGTERM must drain and exit 0, exactly like a
    // SHUTDOWN frame — not die with the default signal disposition.
    let path = sock_path("sigterm");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_rankd"))
        .args(["serve", "--socket"])
        .arg(&path)
        .args(["--workers", "1"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn rankd serve");
    // Wait for the socket, prove it serves, then TERM it.
    let mut client = None;
    for _ in 0..100 {
        if let Ok(c) = Client::connect(&path) {
            client = Some(c);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut client = client.expect("daemon came up within 5s");
    let list = gen::random_list(1000, 11);
    assert_eq!(
        client.rank(&list).expect("pre-TERM rank").output,
        HostRunner::new(Algorithm::ReidMiller).rank(&list)
    );
    drop(client);
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM delivered");
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "SIGTERM is a graceful drain, got {status:?}");
    assert!(Client::connect(&path).is_err(), "socket withdrawn after drain");
}

#[test]
fn adversarial_lengths_fail_typed_without_allocation() {
    // Audit regressions: every length field a client controls, pushed
    // to its extreme, must come back as a typed MALFORMED on a live
    // connection — never an OOM, a panic, or a dead handler.
    let server = start("adversarial-lengths", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("raw connect");
    let reply = roundtrip(&mut stream, FrameKind::Hello as u8, &protocol::hello_body());
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::HelloOk));

    // RANK claiming u32::MAX links (4·2³² bytes): the checked multiply
    // must refuse before any allocation.
    let mut body = vec![0u8];
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // SCAN_H claiming u32::MAX values behind an 8-byte handle.
    let mut body = vec![0u8, WireOp::Add as u8];
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::ScanH as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // MUTATE claiming u32::MAX edits with an empty edit array.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Mutate as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // FLAG_DEADLINE promising 8 bytes but delivering 4.
    let mut body = vec![protocol::FLAG_DEADLINE];
    body.extend_from_slice(&1000u32.to_le_bytes());
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &body);
    expect_error(&reply, ErrorCode::Malformed);

    // After the whole gauntlet the same connection still ranks.
    let list = gen::random_list(300, 3);
    let reply = roundtrip(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false));
    assert_eq!(FrameKind::from_u8(reply.kind), Some(FrameKind::Output));
    drop(stream);
    server.stop();
}
