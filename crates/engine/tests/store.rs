//! Property tests for the resident dataset store: the byte budget is
//! never exceeded, LRU order matches a shadow model op for op,
//! refcounted entries survive eviction pressure, the counter algebra
//! holds (`hits + misses == lookups`), and concurrent PUT/query/DROP
//! interleavings never panic or serve another connection's data.
//!
//! The proptest cases run a random operation tape against both the
//! real [`DatasetStore`] and a straight-line shadow model; any
//! divergence in recency order, resident bytes, or counters fails with
//! the tape visible. `store_model_deep` re-runs the same check over a
//! much larger tape population and is `#[ignore]`d for nightly CI
//! (`--include-ignored`).

use engine::store::{list_footprint, DatasetStore, StoreError};
use listkit::gen;
use listkit::LinkedList;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Shadow model of the store: a recency queue of `(handle, bytes)`
/// plus the counters, with the exact eviction semantics of
/// `DatasetStore::evict_to_fit` (no pins exist in the single-threaded
/// tape, so every entry is evictable).
#[derive(Default)]
struct Model {
    budget: u64,
    order: VecDeque<(u64, u64)>,
    next_handle: u64,
    resident: u64,
    puts: u64,
    drops: u64,
    lookups: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    put_rejected: u64,
}

impl Model {
    fn new(budget: u64) -> Self {
        Model { budget, next_handle: 1, ..Default::default() }
    }

    fn put(&mut self, bytes: u64) -> Option<u64> {
        while self.resident + bytes > self.budget {
            match self.order.pop_front() {
                Some((_, b)) => {
                    self.resident -= b;
                    self.evictions += 1;
                }
                None => {
                    self.put_rejected += 1;
                    return None;
                }
            }
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.order.push_back((handle, bytes));
        self.resident += bytes;
        self.puts += 1;
        Some(handle)
    }

    fn get(&mut self, handle: u64) -> bool {
        self.lookups += 1;
        if let Some(pos) = self.order.iter().position(|&(h, _)| h == handle) {
            let entry = self.order.remove(pos).expect("position just found");
            self.order.push_back(entry);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn drop_dataset(&mut self, handle: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&(h, _)| h == handle) {
            let (_, b) = self.order.remove(pos).expect("position just found");
            self.resident -= b;
            self.drops += 1;
            true
        } else {
            false
        }
    }
}

/// Decode one tape word into an operation and drive both the store and
/// the model, asserting they agree after every step.
fn run_tape(budget: u64, tape: &[u64]) {
    const CONN: u64 = 1;
    let store = Arc::new(DatasetStore::new(budget));
    let mut model = Model::new(budget);
    let mut issued: Vec<u64> = Vec::new();

    for (step, &w) in tape.iter().enumerate() {
        match w % 4 {
            0 | 1 => {
                // PUT a list sized to make evictions and rejections
                // both reachable under small budgets.
                let n = 1 + ((w >> 8) % 300) as usize;
                let list = Arc::new(gen::sequential_list(n));
                let bytes = list_footprint(&list);
                let got = store.put(CONN, list);
                match model.put(bytes) {
                    Some(handle) => {
                        let receipt = got.unwrap_or_else(|e| {
                            panic!("step {step}: model admitted {bytes} B, store said {e}")
                        });
                        assert_eq!(receipt.handle, handle, "step {step}: handle sequence");
                        assert_eq!(receipt.bytes, bytes, "step {step}: charged bytes");
                        issued.push(handle);
                    }
                    None => {
                        assert_eq!(
                            got.expect_err(&format!("step {step}: model rejected {bytes} B")),
                            StoreError::StoreFull
                        );
                    }
                }
            }
            2 => {
                // GET: mostly a previously issued handle, sometimes one
                // that never existed.
                let handle = if issued.is_empty() || w % 16 == 2 {
                    u64::MAX - (w >> 32) % 7
                } else {
                    issued[((w >> 16) as usize) % issued.len()]
                };
                let got = store.get(handle, CONN);
                if model.get(handle) {
                    let guard = got.unwrap_or_else(|e| {
                        panic!("step {step}: model resolved handle {handle}, store said {e}")
                    });
                    assert_eq!(guard.handle(), handle);
                    drop(guard); // release the pin before the next op
                } else {
                    assert_eq!(
                        got.expect_err(&format!("step {step}: model missed handle {handle}")),
                        StoreError::StaleHandle
                    );
                }
            }
            _ => {
                let handle = if issued.is_empty() {
                    42
                } else {
                    issued[((w >> 16) as usize) % issued.len()]
                };
                let got = store.drop_dataset(handle, CONN);
                if model.drop_dataset(handle) {
                    got.unwrap_or_else(|e| {
                        panic!("step {step}: model dropped handle {handle}, store said {e}")
                    });
                } else {
                    assert_eq!(got, Err(StoreError::StaleHandle), "step {step}");
                }
            }
        }

        // Invariants after every step.
        let st = store.stats();
        assert!(st.resident_bytes <= budget, "step {step}: budget exceeded ({st:?})");
        assert_eq!(st.resident_bytes, model.resident, "step {step}: resident bytes");
        assert_eq!(st.hits + st.misses, st.lookups, "step {step}: counter algebra");
        let want: Vec<u64> = model.order.iter().map(|&(h, _)| h).collect();
        assert_eq!(store.resident_handles(), want, "step {step}: LRU order diverged");
    }

    let st = store.stats();
    assert_eq!(
        (st.puts, st.drops, st.lookups, st.hits, st.misses, st.evictions, st.put_rejected),
        (
            model.puts,
            model.drops,
            model.lookups,
            model.hits,
            model.misses,
            model.evictions,
            model.put_rejected
        ),
        "final counters diverged from the model"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The store agrees with the shadow model on every random tape:
    /// budget never exceeded, LRU order identical, counters identical.
    #[test]
    fn store_matches_the_shadow_model(
        budget in 600u64..6000,
        tape in vec(any::<u64>(), 1..120),
    ) {
        run_tape(budget, &tape);
    }
}

/// The nightly-depth variant of the model check: far more tapes, run
/// with `cargo test -- --include-ignored` (CI's nightly-full job).
#[test]
#[ignore = "deep property sweep; nightly CI runs it via --include-ignored"]
fn store_model_deep() {
    let mut seed = 0x5EED_5709u64;
    for case in 0..1500 {
        // Splitmix-style tape derivation: deterministic, independent of
        // the proptest shim's per-test RNG.
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let budget = 600 + next() % 8000;
        let len = 1 + (next() % 200) as usize;
        let tape: Vec<u64> = (0..len).map(|_| next()).collect();
        run_tape(budget, &tape);
        let _ = case;
    }
}

#[test]
fn pinned_entries_survive_eviction_pressure() {
    // Budget fits two 1000-vertex datasets; one is pinned by a live
    // guard. Fifty more PUTs each force an eviction — and every victim
    // is the idle flood entry, never the pinned one.
    let store = Arc::new(DatasetStore::new(10_000));
    let pinned_list = Arc::new(gen::random_list(1_000, 0x71D));
    let pinned = store.put(1, Arc::clone(&pinned_list)).expect("pinned fits");
    let guard = store.get(pinned.handle, 1).expect("pin");

    for i in 0..50u64 {
        let r = store.put(1, Arc::new(gen::random_list(1_000, i))).expect("flood put");
        assert_ne!(r.handle, pinned.handle);
        assert!(store.stats().resident_bytes <= 10_000);
    }
    // The pinned dataset is still resident and still the same data.
    assert_eq!(guard.list().links(), pinned_list.links());
    store.get(pinned.handle, 1).expect("pinned entry survived 50 evictions");
    assert!(store.stats().evictions >= 49, "flood entries were evicted instead");
    drop(guard);
}

#[test]
fn a_pin_can_force_store_full_and_releases_on_drop() {
    // Budget holds exactly one dataset. While it is pinned, a second
    // PUT cannot evict it and fails typed; once the guard drops, the
    // same PUT succeeds by evicting the now-idle entry.
    let store = Arc::new(DatasetStore::new(5_000));
    let first = store.put(1, Arc::new(gen::random_list(1_000, 1))).expect("fits");
    let guard = store.get(first.handle, 1).expect("pin");
    let second = Arc::new(gen::random_list(1_000, 2));
    assert_eq!(
        store.put(1, Arc::clone(&second)).expect_err("pinned entry is not evictable"),
        StoreError::StoreFull
    );
    drop(guard);
    store.put(1, second).expect("idle entry evicted once unpinned");
    assert_eq!(store.get(first.handle, 1).expect_err("first was evicted"), StoreError::StaleHandle);
}

#[test]
fn artifact_cache_builds_once_reuses_and_charges_the_budget() {
    let store = Arc::new(DatasetStore::new(100_000));
    let list = Arc::new(gen::random_list(1_000, 9));
    let receipt = store.put(1, Arc::clone(&list)).expect("put");
    let entry = store.get(receipt.handle, 1).expect("get");

    let base = store.stats().resident_bytes;
    let a1 = entry.artifacts().get_or_build(&list, 64, 2);
    let st = store.stats();
    assert_eq!(st.artifacts_built, 1);
    assert!(st.resident_bytes > base, "cached artifact bytes are charged");

    let a2 = entry.artifacts().get_or_build(&list, 64, 2);
    assert!(Arc::ptr_eq(&a1, &a2), "same plan key returns the cached artifact");
    assert_eq!(store.stats().artifacts_reused, 1);

    let _a3 = entry.artifacts().get_or_build(&list, 128, 2);
    assert_eq!(store.stats().artifacts_built, 2, "a different plan key is a separate build");
    assert_eq!(entry.artifacts().cached_plans(), vec![(64, 2), (128, 2)]);

    // Dropping the dataset releases the list *and* its artifacts.
    drop(entry);
    store.drop_dataset(receipt.handle, 1).expect("drop");
    assert_eq!(store.stats().resident_bytes, 0);
}

#[test]
fn artifact_that_cannot_be_charged_is_used_uncached() {
    // The budget fits the list with no room for its artifact (the
    // entry itself is never evicted to make room for its own
    // artifact): the build must still be returned, just not cached.
    let list = Arc::new(gen::random_list(1_000, 9));
    let budget = list_footprint(&list) + 64;
    let store = Arc::new(DatasetStore::new(budget));
    let receipt = store.put(1, Arc::clone(&list)).expect("put");
    let entry = store.get(receipt.handle, 1).expect("get");

    let built = entry.artifacts().get_or_build(&list, 64, 2);
    assert_eq!(built.len(), 1_000, "uncacheable artifact still serves the query");
    assert!(entry.artifacts().cached_plans().is_empty(), "nothing was cached");
    assert!(store.stats().resident_bytes <= budget, "budget never exceeded");
}

#[test]
fn drop_during_artifact_build_never_leaks_budget() {
    // Artifact builds race optimistically: the charge lands before the
    // map insert, and a losing build uncharges. A DROP that fires in
    // that window subtracts the entry's total (which already includes
    // every in-flight charge), so the loser's uncharge must become a
    // no-op — uncharging again would double-credit the budget, and
    // keeping the charge would leak it. Race two same-key builders
    // against a drop over many rounds and pin the only observable
    // invariant: once every handle is dropped, zero bytes are
    // resident, no matter where the drop landed.
    use std::sync::Barrier;
    let store = Arc::new(DatasetStore::new(1_000_000));
    for round in 0..80u64 {
        let list = Arc::new(gen::random_list(2_000, round));
        let receipt = store.put(1, Arc::clone(&list)).expect("fits");
        let cache = store.get(receipt.handle, 1).expect("get").artifacts();
        let barrier = Arc::new(Barrier::new(3));
        let builders: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let list = Arc::clone(&list);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Same plan key: the slower build loses the insert
                    // race and must return its charge — unless the
                    // drop already did.
                    let built = cache.get_or_build(&list, 64, 2);
                    assert_eq!(built.len(), 2_000, "build serves even when uncached");
                })
            })
            .collect();
        barrier.wait();
        // Stagger the drop across the build window round by round.
        for _ in 0..round % 7 {
            std::thread::yield_now();
        }
        store.drop_dataset(receipt.handle, 1).expect("drop");
        for b in builders {
            b.join().expect("builder");
        }
        let st = store.stats();
        assert_eq!(
            st.resident_bytes, 0,
            "round {round}: all handles dropped yet {} bytes still charged",
            st.resident_bytes
        );
        assert_eq!(st.resident_count, 0, "round {round}");
    }
}

#[test]
fn concurrent_put_query_drop_interleavings_never_serve_foreign_data() {
    // Four connections hammer one small store. Every successful GET
    // must resolve to exactly the list that connection PUT (pointer
    // identity — the store hands back the same Arc); foreign handles
    // must always be stale; the budget must hold at every probe; and
    // teardown must reap precisely what is left.
    const THREADS: u64 = 4;
    const ITERS: u64 = 300;
    let store = Arc::new(DatasetStore::new(40_000));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut state = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut mine: Vec<(u64, Arc<LinkedList>)> = Vec::new();
                for i in 0..ITERS {
                    match rng() % 5 {
                        0 | 1 => {
                            let n = 100 + (rng() % 900) as usize;
                            let list = Arc::new(gen::random_list(n, t * ITERS + i));
                            if let Ok(receipt) = store.put(t, Arc::clone(&list)) {
                                mine.push((receipt.handle, list));
                            }
                        }
                        2 | 3 if !mine.is_empty() => {
                            let idx = (rng() as usize) % mine.len();
                            let (handle, expected) = &mine[idx];
                            match store.get(*handle, t) {
                                Ok(guard) => {
                                    assert!(
                                        Arc::ptr_eq(&guard.list(), expected),
                                        "conn {t} got a different dataset for its own handle"
                                    );
                                }
                                // Evicted under pressure: legal, forget it.
                                Err(StoreError::StaleHandle) => {
                                    mine.swap_remove(idx);
                                }
                                Err(e) => panic!("unexpected get error: {e}"),
                            }
                        }
                        4 if !mine.is_empty() => {
                            let idx = (rng() as usize) % mine.len();
                            let (handle, _) = mine.swap_remove(idx);
                            // Ok, or StaleHandle if eviction got there
                            // first — both legal, nothing else is.
                            if let Err(e) = store.drop_dataset(handle, t) {
                                assert_eq!(e, StoreError::StaleHandle);
                            }
                        }
                        _ => {}
                    }
                    // A handle owned by this connection must never
                    // resolve for any other connection.
                    if let Some((handle, _)) = mine.last() {
                        let other = (t + 1) % THREADS;
                        assert_eq!(
                            store.get(*handle, other).expect_err("foreign handle resolved"),
                            StoreError::StaleHandle
                        );
                    }
                    assert!(store.stats().resident_bytes <= 40_000, "budget exceeded");
                }
                store.drop_connection(t)
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    let st = store.stats();
    assert_eq!(st.resident_count, 0, "teardown reaped everything");
    assert_eq!(st.resident_bytes, 0);
    assert_eq!(st.hits + st.misses, st.lookups);
    assert!(store.resident_handles().is_empty());
}
