//! Telemetry contract tests: histogram math (property-based),
//! trace-id propagation through submit → handle → report, engine-level
//! sum-consistency between the phase histograms and the per-job
//! timings, the `--no-telemetry` off switch, and zero-sample `Display`
//! regressions for both stats surfaces.

use engine::telemetry::hist;
use engine::{Engine, EngineConfig, Histogram, JobOptions, OpKind, Phase, Request, ServerStats};
use listkit::gen;
use proptest::prelude::*;
use std::sync::Arc;

/// Counters and histograms are published just *after* a job's handle
/// is fulfilled, so a `wait()`er can observe the snapshot a beat
/// early; settle on the completed counter before asserting.
fn await_completed(engine: &Engine, jobs: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while engine.stats().completed < jobs {
        assert!(std::time::Instant::now() < deadline, "completed counter never reached {jobs}");
        std::thread::yield_now();
    }
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `percentile(p)` must land inside `percentile_bounds(p)`, and
    /// the bucket containing it must be no wider than `1/SUB` (6.25%)
    /// of its lower bound — the HDR resolution guarantee.
    #[test]
    fn percentile_lies_within_its_bucket_bounds(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        p in 0.0f64..100.0,
    ) {
        let h = hist_of(&values);
        for q in [0.0, p, 50.0, 95.0, 99.0, 100.0] {
            let (lo, hi) = h.percentile_bounds(q);
            let point = h.percentile(q);
            prop_assert!(lo <= point && point <= hi, "p{q}: {point} outside [{lo}, {hi}]");
            prop_assert!(
                hi.saturating_sub(lo) <= (lo / hist::SUB).max(1),
                "p{q}: bucket [{lo}, {hi}] wider than 1/{} of its lower bound",
                hist::SUB
            );
        }
        // The extremes are exact: p100's bucket holds the true max.
        let (lo, hi) = h.percentile_bounds(100.0);
        let max = *values.iter().max().unwrap();
        prop_assert!(lo <= max && max <= hi);
        prop_assert_eq!(h.max(), max);
    }

    /// Merge is associative and commutative, so concurrent collectors
    /// can be folded in any order (serve_bench relies on this).
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
        c in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "merge must be associative");
    }

    /// The wire codec round trip: `nonzero_buckets` + summary fields
    /// reconstruct the histogram exactly via `from_parts`.
    #[test]
    fn from_parts_round_trips_nonzero_buckets(
        values in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let h = hist_of(&values);
        let buckets: Vec<(u16, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&buckets, h.count(), h.sum(), h.max())
            .expect("self-consistent parts must parse");
        prop_assert_eq!(back, h);
    }
}

#[test]
fn counters_saturate_instead_of_wrapping() {
    let mut h = Histogram::new();
    h.record_n(u64::MAX, 3);
    assert_eq!(h.sum(), u64::MAX, "sum saturates");
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    h.record_n(1, u64::MAX);
    assert_eq!(h.count(), u64::MAX, "count saturates");
    let mut other = Histogram::new();
    other.record_n(u64::MAX, u64::MAX);
    h.merge(&other);
    assert_eq!(h.count(), u64::MAX, "merge saturates counts");
    assert_eq!(h.sum(), u64::MAX, "merge saturates sum");
    // Percentile queries stay well-defined at the saturation point.
    let (lo, hi) = h.percentile_bounds(99.0);
    assert!(lo <= hi);
}

#[test]
fn trace_ids_propagate_from_submit_to_report() {
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    let list = Arc::new(gen::random_list(64, 7));

    // An upstream-assigned id is carried through verbatim.
    let opts = JobOptions::default().with_trace_id(0xDEAD_BEEF);
    let handle = engine.submit_with(Request::rank(Arc::clone(&list)), opts).expect("submit");
    assert_eq!(handle.trace_id(), 0xDEAD_BEEF);
    let report = handle.wait().expect("rank completes");
    assert_eq!(report.trace_id, 0xDEAD_BEEF);

    // Without one, the engine allocates distinct nonzero ids.
    let h1 = engine.submit_with(Request::rank(Arc::clone(&list)), JobOptions::default()).unwrap();
    let h2 = engine.submit_with(Request::rank(Arc::clone(&list)), JobOptions::default()).unwrap();
    let (t1, t2) = (h1.trace_id(), h2.trace_id());
    assert_ne!(t1, 0);
    assert_ne!(t2, 0);
    assert_ne!(t1, t2, "auto-assigned trace ids must be unique");
    assert_eq!(h1.wait().unwrap().trace_id, t1);
    assert_eq!(h2.wait().unwrap().trace_id, t2);
}

#[test]
fn phase_histograms_are_sum_consistent_with_job_reports() {
    let engine = Engine::new(EngineConfig::default().with_workers(2));
    let mut total_exec = 0u64;
    let mut total_queued = 0u64;
    let mut total_plan = 0u64;
    let jobs = 5;
    for i in 0..jobs {
        let list = Arc::new(gen::random_list(3000 + i * 117, i as u64));
        let report = engine
            .submit_with(Request::rank(list), JobOptions::default())
            .expect("submit")
            .wait()
            .expect("rank completes");
        total_exec += report.exec_ns;
        total_queued += report.queued_ns;
        total_plan += report.plan_ns;
    }
    await_completed(&engine, jobs as u64);

    let stats = engine.stats();
    let exec = &stats.phase_hist[Phase::Exec.index()];
    let queued = &stats.phase_hist[Phase::QueueWait.index()];
    let plan = &stats.phase_hist[Phase::Plan.index()];
    assert_eq!(exec.count(), jobs as u64);
    assert_eq!(exec.sum(), total_exec, "Exec phase sum must equal the reports' exec_ns");
    assert_eq!(queued.sum(), total_queued, "QueueWait phase sum must equal queued_ns");
    assert_eq!(plan.sum(), total_plan, "Plan phase sum must equal plan_ns");

    // Every job here was a rank, so the per-op view agrees too.
    let per_op = &stats.op_hist[OpKind::Rank.index()];
    assert_eq!(per_op.count(), jobs as u64);
    assert_eq!(per_op.sum(), total_exec);

    // In-process submits never touch the wire phases.
    assert!(stats.phase_hist[Phase::Decode.index()].is_empty());
    assert!(stats.phase_hist[Phase::ReplyWrite.index()].is_empty());
}

#[test]
fn no_telemetry_engine_records_nothing_but_still_traces() {
    let engine = Engine::new(EngineConfig::default().with_workers(1).with_telemetry(false));
    let list = Arc::new(gen::random_list(500, 3));
    let report = engine
        .submit_with(Request::rank(list), JobOptions::default())
        .expect("submit")
        .wait()
        .expect("rank completes");
    // Trace ids are part of the request contract, not the metrics
    // plane — they survive the off switch.
    assert_ne!(report.trace_id, 0);
    await_completed(&engine, 1);

    let stats = engine.stats();
    assert!(stats.phase_hist.iter().all(Histogram::is_empty), "phases must stay empty");
    assert!(stats.op_hist.iter().all(Histogram::is_empty), "per-op hists must stay empty");
    assert!(engine.telemetry().recent_spans(16).is_empty(), "span ring must stay empty");
    // The counter surface is unaffected: the job still completed.
    assert_eq!(engine.stats().completed, 1);
}

/// Zero-sample regression: both stats `Display` impls must render a
/// fresh (all-zero) snapshot without panicking and without `NaN`/`inf`
/// artifacts from divide-by-zero percentiles or rates.
#[test]
fn zero_sample_stats_render_cleanly() {
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    let rendered = format!("{}", engine.stats());
    assert!(!rendered.contains("NaN"), "engine stats rendered NaN:\n{rendered}");
    assert!(!rendered.contains("inf"), "engine stats rendered inf:\n{rendered}");
    assert!(rendered.contains("jobs:"), "sanity: report still renders:\n{rendered}");

    let server = format!("{}", ServerStats::default());
    assert!(!server.contains("NaN"), "server stats rendered NaN:\n{server}");
    assert!(!server.contains("inf"), "server stats rendered inf:\n{server}");
}
