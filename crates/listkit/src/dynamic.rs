//! Mutable list editing: the substrate of the dynamic-list plane.
//!
//! A [`MutableList`] keeps a list's successor *and* predecessor arrays
//! so that structural edits — [`Edit::Splice`], [`Edit::Delete`],
//! [`Edit::Append`] — apply in time proportional to the edit, not the
//! list. Every batch is **atomic** (an invalid edit anywhere in the
//! batch leaves the list untouched) and returns an [`EditReport`]
//! recording which vertices' links or predecessors changed, which is
//! exactly the information [`crate::sharded::ShardedList::rebuild_dirty`]
//! needs to patch a sharded artifact instead of rebuilding it.
//!
//! ## The dense-vertex invariant
//!
//! [`LinkedList`] names vertices `0..n`, so edits must keep the vertex
//! set dense:
//!
//! * **Splice** reorders; the vertex set is unchanged.
//! * **Delete** removes vertex `v` and renames the last vertex `n-1`
//!   into slot `v` (a swap-remove), shrinking the list to `n-1`.
//! * **Append** adds `count` fresh vertices `n..n+count` at the tail.
//!
//! Clients replaying edits against their own mirror must apply the
//! same renaming rule; `docs/PROTOCOL.md` documents it as part of the
//! wire contract.
//!
//! ```
//! use listkit::dynamic::{Edit, MutableList};
//! use listkit::LinkedList;
//!
//! let list = LinkedList::from_order(&[0, 1, 2, 3]).unwrap();
//! let mut m = MutableList::from_list(&list);
//! // Move the run [1, 2] to the front: order becomes 1, 2, 0, 3.
//! m.apply(&[Edit::Splice { first: 1, last: 2, after: None }]).unwrap();
//! assert_eq!(m.snapshot().order(), vec![1, 2, 0, 3]);
//! ```

use crate::list::{Idx, LinkedList};
use std::fmt;

/// One structural edit against a [`MutableList`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Move the run `first -> ... -> last` (a contiguous stretch of the
    /// current traversal) so that it follows `after`; `None` moves the
    /// run to the front of the list.
    Splice {
        /// First vertex of the run being moved.
        first: Idx,
        /// Last vertex of the run (may equal `first`).
        last: Idx,
        /// The vertex the run is re-attached after (`None` = front).
        after: Option<Idx>,
    },
    /// Remove vertex `v`. The last vertex (`n-1`) is renamed into slot
    /// `v` to keep the vertex set dense (swap-remove).
    Delete {
        /// The vertex to remove.
        v: Idx,
    },
    /// Chain `count` fresh vertices `n..n+count` after the current
    /// tail, in index order.
    Append {
        /// How many vertices to add (must be positive).
        count: u32,
    },
}

/// Why a batch of edits was refused. The batch is atomic: on any error
/// the list is exactly as it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The batch contained no edits.
    EmptyBatch,
    /// An edit named a vertex outside `0..len`.
    VertexOutOfRange {
        /// Position of the offending edit in the batch.
        index: usize,
        /// The out-of-range vertex.
        v: Idx,
        /// List length at the time the edit was checked.
        len: usize,
    },
    /// A splice's `first`/`last` pair is not a run of the current
    /// traversal (walking successors from `first` never reaches
    /// `last`).
    NotARun {
        /// Position of the offending edit in the batch.
        index: usize,
        /// Claimed first vertex of the run.
        first: Idx,
        /// Claimed last vertex of the run.
        last: Idx,
    },
    /// A splice's `after` target lies inside the run being moved (the
    /// splice would disconnect the list).
    TargetInRun {
        /// Position of the offending edit in the batch.
        index: usize,
        /// The offending target.
        after: Idx,
    },
    /// A delete would leave the list empty (lists have ≥ 1 vertex).
    DeleteLastVertex {
        /// Position of the offending edit in the batch.
        index: usize,
    },
    /// An append of zero vertices.
    ZeroAppend {
        /// Position of the offending edit in the batch.
        index: usize,
    },
    /// An append would push the vertex count past `Idx::MAX`.
    TooLong {
        /// Position of the offending edit in the batch.
        index: usize,
        /// Length the append would have produced.
        len: u64,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::EmptyBatch => write!(f, "empty mutation batch"),
            EditError::VertexOutOfRange { index, v, len } => {
                write!(f, "edit {index}: vertex {v} out of range for length {len}")
            }
            EditError::NotARun { index, first, last } => {
                write!(f, "edit {index}: {first}..{last} is not a run of the list")
            }
            EditError::TargetInRun { index, after } => {
                write!(f, "edit {index}: splice target {after} lies inside the moved run")
            }
            EditError::DeleteLastVertex { index } => {
                write!(f, "edit {index}: cannot delete the only vertex")
            }
            EditError::ZeroAppend { index } => write!(f, "edit {index}: append of zero vertices"),
            EditError::TooLong { index, len } => {
                write!(f, "edit {index}: length {len} exceeds the index range")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// What a successfully applied batch changed — the input to dirty-shard
/// computation.
#[derive(Clone, Debug)]
pub struct EditReport {
    /// Edits applied (the whole batch).
    pub applied: usize,
    /// Length before the batch.
    pub old_len: usize,
    /// Length after the batch.
    pub new_len: usize,
    /// Smallest length the list passed through while the batch applied
    /// (deletes followed by appends recycle indices above this mark, so
    /// everything at or past it must be treated as changed).
    pub low_water: usize,
    /// Vertices whose successor link or predecessor identity changed,
    /// in post-batch numbering. May contain duplicates and indices made
    /// stale by later shrinks; consumers filter by `new_len`.
    pub touched: Vec<Idx>,
}

impl EditReport {
    /// The shards (of a grid with `shard_size`-vertex shards) that a
    /// pre-batch [`crate::sharded::ShardedList`] can **not** reuse:
    /// shards containing a touched vertex, plus every shard whose range
    /// reaches past the batch's low-water length (their vertex ranges
    /// shrank, grew, or hold recycled indices). Sorted, deduplicated.
    pub fn dirty_shards(&self, shard_size: usize) -> Vec<usize> {
        assert!(shard_size > 0, "shard size must be positive");
        let count = self.new_len.div_ceil(shard_size);
        let mut dirty = vec![false; count];
        for &t in &self.touched {
            if (t as usize) < self.new_len {
                dirty[t as usize / shard_size] = true;
            }
        }
        for (s, d) in dirty.iter_mut().enumerate() {
            if (s + 1) * shard_size > self.low_water {
                *d = true;
            }
        }
        dirty.iter().enumerate().filter_map(|(s, &d)| d.then_some(s)).collect()
    }

    /// Fold another report (a later batch) into this one.
    pub fn merge(&mut self, later: &EditReport) {
        self.applied += later.applied;
        self.new_len = later.new_len;
        self.low_water = self.low_water.min(later.low_water);
        self.touched.extend_from_slice(&later.touched);
    }
}

/// A list under mutation: successor and predecessor arrays plus head
/// and tail, with `prev[head] == head` mirroring the tail self-loop.
/// See the [module docs](self) for the edit semantics.
#[derive(Clone, Debug)]
pub struct MutableList {
    next: Vec<Idx>,
    prev: Vec<Idx>,
    head: Idx,
    tail: Idx,
}

impl MutableList {
    /// Start mutating a copy of `list`'s structure.
    pub fn from_list(list: &LinkedList) -> Self {
        MutableList {
            next: list.links().to_vec(),
            prev: list.predecessors(),
            head: list.head(),
            tail: list.tail(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Never empty (edits preserve the ≥ 1-vertex invariant).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current head vertex.
    pub fn head(&self) -> Idx {
        self.head
    }

    /// The current tail vertex.
    pub fn tail(&self) -> Idx {
        self.tail
    }

    /// Estimated resident footprint: two `u32` arrays plus headers.
    pub fn footprint(&self) -> u64 {
        8 * self.len() as u64 + 96
    }

    /// An immutable snapshot of the current structure. The arrays are
    /// maintained consistent by construction, so this skips the `O(n)`
    /// validation walk (debug builds still check).
    pub fn snapshot(&self) -> LinkedList {
        LinkedList::from_raw_trusted(self.next.clone(), self.head, self.tail)
    }

    /// Apply a batch of edits atomically: either every edit applies (in
    /// order, each validated against the state its predecessors left)
    /// and the report describes the damage, or the first invalid edit
    /// is reported and the list is untouched.
    pub fn apply(&mut self, edits: &[Edit]) -> Result<EditReport, EditError> {
        if edits.is_empty() {
            return Err(EditError::EmptyBatch);
        }
        let mut work = self.clone();
        let mut report = EditReport {
            applied: edits.len(),
            old_len: self.len(),
            new_len: self.len(),
            low_water: self.len(),
            touched: Vec::new(),
        };
        for (index, &edit) in edits.iter().enumerate() {
            work.apply_one(index, edit, &mut report.touched)?;
            report.low_water = report.low_water.min(work.len());
        }
        report.new_len = work.len();
        *self = work;
        Ok(report)
    }

    fn check(&self, index: usize, v: Idx) -> Result<(), EditError> {
        if (v as usize) < self.len() {
            Ok(())
        } else {
            Err(EditError::VertexOutOfRange { index, v, len: self.len() })
        }
    }

    fn apply_one(
        &mut self,
        index: usize,
        edit: Edit,
        touched: &mut Vec<Idx>,
    ) -> Result<(), EditError> {
        match edit {
            Edit::Splice { first, last, after } => self.splice(index, first, last, after, touched),
            Edit::Delete { v } => self.delete(index, v, touched),
            Edit::Append { count } => self.append(index, count, touched),
        }
    }

    fn splice(
        &mut self,
        index: usize,
        first: Idx,
        last: Idx,
        after: Option<Idx>,
        touched: &mut Vec<Idx>,
    ) -> Result<(), EditError> {
        self.check(index, first)?;
        self.check(index, last)?;
        if let Some(a) = after {
            self.check(index, a)?;
        }
        // Walk the claimed run, confirming `last` is reachable and
        // `after` is not inside it. O(run length).
        let mut cur = first;
        let mut steps = 0usize;
        loop {
            if Some(cur) == after {
                return Err(EditError::TargetInRun { index, after: cur });
            }
            if cur == last {
                break;
            }
            if cur == self.tail || steps >= self.len() {
                return Err(EditError::NotARun { index, first, last });
            }
            cur = self.next[cur as usize];
            steps += 1;
        }
        let p = (first != self.head).then(|| self.prev[first as usize]);
        if p == after {
            return Ok(()); // already in place: a no-op splice
        }
        let s = (last != self.tail).then(|| self.next[last as usize]);
        // Unlink the run.
        match (p, s) {
            (Some(p), Some(s)) => {
                self.next[p as usize] = s;
                self.prev[s as usize] = p;
            }
            (Some(p), None) => {
                self.next[p as usize] = p;
                self.tail = p;
            }
            (None, Some(s)) => {
                self.prev[s as usize] = s;
                self.head = s;
            }
            // The run is the whole list; `after` was inside it (caught
            // above) or `None` (caught by the no-op check).
            (None, None) => unreachable!("whole-list splice is a no-op or TargetInRun"),
        }
        // Relink after the target.
        match after {
            None => {
                let old_head = self.head;
                self.next[last as usize] = old_head;
                self.prev[old_head as usize] = last;
                self.prev[first as usize] = first;
                self.head = first;
                touched.push(old_head);
            }
            Some(a) => {
                let sa = (a != self.tail).then(|| self.next[a as usize]);
                self.next[a as usize] = first;
                self.prev[first as usize] = a;
                match sa {
                    Some(sa) => {
                        self.next[last as usize] = sa;
                        self.prev[sa as usize] = last;
                        touched.push(sa);
                    }
                    None => {
                        self.next[last as usize] = last;
                        self.tail = last;
                    }
                }
                touched.push(a);
            }
        }
        touched.extend(p);
        touched.extend(s);
        touched.push(first);
        touched.push(last);
        Ok(())
    }

    fn delete(&mut self, index: usize, v: Idx, touched: &mut Vec<Idx>) -> Result<(), EditError> {
        self.check(index, v)?;
        if self.len() == 1 {
            return Err(EditError::DeleteLastVertex { index });
        }
        // Unlink v.
        let p = (v != self.head).then(|| self.prev[v as usize]);
        let s = (v != self.tail).then(|| self.next[v as usize]);
        match (p, s) {
            (Some(p), Some(s)) => {
                self.next[p as usize] = s;
                self.prev[s as usize] = p;
            }
            (Some(p), None) => {
                self.next[p as usize] = p;
                self.tail = p;
            }
            (None, Some(s)) => {
                self.prev[s as usize] = s;
                self.head = s;
            }
            (None, None) => unreachable!("singleton delete rejected above"),
        }
        touched.extend(p);
        touched.extend(s);
        // Swap-remove: rename the last vertex into slot v.
        let w = (self.len() - 1) as Idx;
        if v != w {
            let pw = (w != self.head).then(|| self.prev[w as usize]);
            let sw = (w != self.tail).then(|| self.next[w as usize]);
            self.next[v as usize] = if let Some(sw) = sw { sw } else { v };
            self.prev[v as usize] = if let Some(pw) = pw { pw } else { v };
            if let Some(pw) = pw {
                self.next[pw as usize] = v;
                touched.push(pw);
            }
            if let Some(sw) = sw {
                self.prev[sw as usize] = v;
                touched.push(sw);
            }
            if self.head == w {
                self.head = v;
            }
            if self.tail == w {
                self.tail = v;
            }
            touched.push(v);
        }
        self.next.pop();
        self.prev.pop();
        Ok(())
    }

    fn append(
        &mut self,
        index: usize,
        count: u32,
        touched: &mut Vec<Idx>,
    ) -> Result<(), EditError> {
        if count == 0 {
            return Err(EditError::ZeroAppend { index });
        }
        let new_len = self.len() as u64 + count as u64;
        if new_len > Idx::MAX as u64 {
            return Err(EditError::TooLong { index, len: new_len });
        }
        let old_tail = self.tail;
        let first_new = self.len() as Idx;
        for i in 0..count {
            let v = first_new + i;
            self.next.push(v + 1);
            self.prev.push(if i == 0 { old_tail } else { v - 1 });
        }
        let new_tail = first_new + count - 1;
        self.next[new_tail as usize] = new_tail;
        self.next[old_tail as usize] = first_new;
        self.tail = new_tail;
        touched.push(old_tail);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, Layout};

    /// Independent oracle: the traversal order as a vector, with edits
    /// applied by vector surgery instead of link surgery.
    fn apply_to_order(order: &mut Vec<Idx>, edit: Edit) {
        match edit {
            Edit::Splice { first, last, after } => {
                let i = order.iter().position(|&v| v == first).unwrap();
                let j = order.iter().position(|&v| v == last).unwrap();
                let run: Vec<Idx> = order.drain(i..=j).collect();
                let at = match after {
                    None => 0,
                    Some(a) => order.iter().position(|&v| v == a).unwrap() + 1,
                };
                order.splice(at..at, run);
            }
            Edit::Delete { v } => {
                let w = (order.len() - 1) as Idx;
                order.retain(|&x| x != v);
                if v != w {
                    for x in order.iter_mut() {
                        if *x == w {
                            *x = v;
                        }
                    }
                }
            }
            Edit::Append { count } => {
                let n = order.len() as Idx;
                order.extend(n..n + count as Idx);
            }
        }
    }

    fn check(list: &LinkedList, edits: &[Edit]) -> (MutableList, EditReport) {
        let mut m = MutableList::from_list(list);
        let mut order = list.order();
        let report = m.apply(edits).unwrap();
        for &e in edits {
            apply_to_order(&mut order, e);
        }
        let snap = m.snapshot();
        assert_eq!(snap.order(), order, "edits: {edits:?}");
        // prev stays the exact inverse of next.
        assert_eq!(m.prev, snap.predecessors(), "edits: {edits:?}");
        (m, report)
    }

    #[test]
    fn splice_moves_runs_everywhere() {
        let list = LinkedList::from_order(&[4, 2, 0, 3, 1]).unwrap();
        // To the front.
        check(&list, &[Edit::Splice { first: 0, last: 3, after: None }]);
        // Behind the tail.
        check(&list, &[Edit::Splice { first: 2, last: 0, after: Some(1) }]);
        // Single-vertex run.
        check(&list, &[Edit::Splice { first: 3, last: 3, after: Some(4) }]);
        // Run including the head.
        check(&list, &[Edit::Splice { first: 4, last: 2, after: Some(3) }]);
        // Run including the tail.
        check(&list, &[Edit::Splice { first: 3, last: 1, after: None }]);
    }

    #[test]
    fn noop_splices_touch_nothing() {
        let list = LinkedList::from_order(&[0, 1, 2, 3]).unwrap();
        let (_, report) = check(&list, &[Edit::Splice { first: 1, last: 2, after: Some(0) }]);
        assert!(report.touched.is_empty());
        let (_, report) = check(&list, &[Edit::Splice { first: 0, last: 1, after: None }]);
        assert!(report.touched.is_empty());
        // Whole-list splice to the front is also a no-op.
        let (_, report) = check(&list, &[Edit::Splice { first: 0, last: 3, after: None }]);
        assert!(report.touched.is_empty());
    }

    #[test]
    fn delete_swaps_last_vertex_in() {
        let list = LinkedList::from_order(&[3, 1, 4, 0, 2]).unwrap();
        for v in 0..5 {
            check(&list, &[Edit::Delete { v }]);
        }
        // Delete the head, the tail, and a renamed vertex in sequence.
        check(&list, &[Edit::Delete { v: 3 }, Edit::Delete { v: 2 }, Edit::Delete { v: 0 }]);
    }

    #[test]
    fn append_chains_fresh_vertices() {
        let list = LinkedList::from_order(&[1, 0]).unwrap();
        let (m, _) = check(&list, &[Edit::Append { count: 3 }]);
        assert_eq!(m.len(), 5);
        assert_eq!(m.tail(), 4);
        check(&list, &[Edit::Append { count: 1 }, Edit::Append { count: 2 }]);
    }

    #[test]
    fn mixed_batches_match_the_order_oracle() {
        let list = gen::list_with_layout(40, Layout::Random, 7);
        check(
            &list,
            &[
                Edit::Splice { first: 5, last: 5, after: Some(12) },
                Edit::Delete { v: 39 },
                Edit::Append { count: 4 },
                Edit::Splice { first: 40, last: 42, after: None },
                Edit::Delete { v: 0 },
                Edit::Delete { v: 17 },
            ],
        );
    }

    #[test]
    fn batches_are_atomic() {
        let list = LinkedList::from_order(&[0, 1, 2, 3]).unwrap();
        let mut m = MutableList::from_list(&list);
        let before = m.snapshot();
        let err = m
            .apply(&[
                Edit::Splice { first: 0, last: 1, after: Some(3) }, // valid
                Edit::Delete { v: 9 },                              // invalid
            ])
            .unwrap_err();
        assert_eq!(err, EditError::VertexOutOfRange { index: 1, v: 9, len: 4 });
        assert_eq!(m.snapshot(), before, "failed batch must not apply partially");
    }

    #[test]
    fn invalid_edits_are_typed() {
        let list = LinkedList::from_order(&[0, 2, 1]).unwrap();
        let mut m = MutableList::from_list(&list);
        assert_eq!(m.apply(&[]).unwrap_err(), EditError::EmptyBatch);
        assert_eq!(
            m.apply(&[Edit::Splice { first: 7, last: 0, after: None }]).unwrap_err(),
            EditError::VertexOutOfRange { index: 0, v: 7, len: 3 }
        );
        // 1 precedes nothing that reaches 0 (1 is the tail).
        assert_eq!(
            m.apply(&[Edit::Splice { first: 1, last: 0, after: None }]).unwrap_err(),
            EditError::NotARun { index: 0, first: 1, last: 0 }
        );
        assert_eq!(
            m.apply(&[Edit::Splice { first: 0, last: 2, after: Some(2) }]).unwrap_err(),
            EditError::TargetInRun { index: 0, after: 2 }
        );
        assert_eq!(
            m.apply(&[Edit::Append { count: 0 }]).unwrap_err(),
            EditError::ZeroAppend { index: 0 }
        );
        let mut one = MutableList::from_list(&LinkedList::from_order(&[0]).unwrap());
        assert_eq!(
            one.apply(&[Edit::Delete { v: 0 }]).unwrap_err(),
            EditError::DeleteLastVertex { index: 0 }
        );
    }

    #[test]
    fn report_tracks_lengths_and_low_water() {
        let list = gen::sequential_list(10);
        let mut m = MutableList::from_list(&list);
        let report = m
            .apply(&[Edit::Delete { v: 0 }, Edit::Delete { v: 1 }, Edit::Append { count: 5 }])
            .unwrap();
        assert_eq!((report.old_len, report.new_len, report.low_water), (10, 13, 8));
        assert_eq!(report.applied, 3);
    }

    #[test]
    fn dirty_shards_cover_touched_and_resized_regions() {
        // Pure splice deep inside one shard: only that shard (plus the
        // shards of the re-attachment point) can be dirty.
        let list = gen::sequential_list(100);
        let mut m = MutableList::from_list(&list);
        let report = m.apply(&[Edit::Splice { first: 12, last: 14, after: Some(17) }]).unwrap();
        assert_eq!(report.dirty_shards(10), vec![1]);
        // Appending dirties every shard past the old length.
        let mut m = MutableList::from_list(&list);
        let report = m.apply(&[Edit::Append { count: 25 }]).unwrap();
        let dirty = report.dirty_shards(10);
        assert!(dirty.contains(&9) && dirty.contains(&10) && dirty.contains(&12));
        assert!(!dirty.contains(&5), "untouched interior shard stays clean");
        // A delete dirties the shard of the removed slot, the renamed
        // vertex's neighbors, and the truncated tail shard.
        let mut m = MutableList::from_list(&list);
        let report = m.apply(&[Edit::Delete { v: 42 }]).unwrap();
        let dirty = report.dirty_shards(10);
        assert!(dirty.contains(&4) && dirty.contains(&9));
    }

    #[test]
    fn merge_accumulates_reports() {
        let list = gen::sequential_list(20);
        let mut m = MutableList::from_list(&list);
        let mut a = m.apply(&[Edit::Delete { v: 3 }]).unwrap();
        let b = m.apply(&[Edit::Append { count: 2 }]).unwrap();
        a.merge(&b);
        assert_eq!((a.applied, a.old_len, a.new_len, a.low_water), (2, 20, 21, 19));
    }
}
