//! Seedable workload generators.
//!
//! The paper evaluates on lists laid out in *random order* in memory (the
//! hard case for caches and memory banks: every link dereference is an
//! unpredictable gather). We also provide sequential, reversed, strided
//! and blocked layouts so the cache-sensitivity of the workstation
//! baseline (Table I "cache" vs "memory" columns) can be demonstrated
//! mechanistically.

use crate::list::{Idx, LinkedList, ValuedList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// In-place Fisher–Yates shuffle with an explicit RNG.
///
/// Written out rather than using `SliceRandom` so the shuffle is stable
/// across `rand` versions (reproducibility of seeded workloads matters
/// for the experiment harness).
pub fn fisher_yates<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// Memory layout of a generated list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Vertex `k` sits at array slot `k`: perfectly sequential traversal.
    Sequential,
    /// Traversal walks the array backwards.
    Reversed,
    /// Traversal jumps by `stride` slots (mod n): systematic bank/cache
    /// conflicts when the stride divides the bank count.
    Strided(usize),
    /// Blocks of `block` consecutive slots, blocks in random order:
    /// tunable locality between Sequential and Random.
    Blocked(usize),
    /// Uniformly random permutation: the paper's workload.
    Random,
}

/// Generate a list of `n` vertices with the given memory [`Layout`].
///
/// # Panics
/// Panics if `n == 0`, if a strided layout's stride is not coprime with
/// `n`, or if a blocked layout's block size is 0.
pub fn list_with_layout(n: usize, layout: Layout, seed: u64) -> LinkedList {
    assert!(n > 0, "list length must be positive");
    let order: Vec<Idx> = match layout {
        Layout::Sequential => (0..n as Idx).collect(),
        Layout::Reversed => (0..n as Idx).rev().collect(),
        Layout::Strided(stride) => {
            assert!(stride > 0, "stride must be positive");
            assert_eq!(gcd(stride, n), 1, "stride must be coprime with n to form a single list");
            let mut order = Vec::with_capacity(n);
            let mut at = 0usize;
            for _ in 0..n {
                order.push(at as Idx);
                at = (at + stride) % n;
            }
            order
        }
        Layout::Blocked(block) => {
            assert!(block > 0, "block size must be positive");
            let mut rng = StdRng::seed_from_u64(seed);
            let nblocks = n.div_ceil(block);
            let mut blocks: Vec<usize> = (0..nblocks).collect();
            fisher_yates(&mut blocks, &mut rng);
            let mut order = Vec::with_capacity(n);
            for b in blocks {
                let lo = b * block;
                let hi = (lo + block).min(n);
                order.extend((lo as Idx)..(hi as Idx));
            }
            order
        }
        Layout::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<Idx> = (0..n as Idx).collect();
            fisher_yates(&mut order, &mut rng);
            order
        }
    };
    LinkedList::from_order(&order).expect("generated order is a permutation")
}

/// The paper's workload: a list in uniformly random memory order.
///
/// ```
/// let list = listkit::gen::random_list(1000, 42);
/// assert_eq!(list.len(), 1000);
/// assert_eq!(list.iter().count(), 1000);
/// // Deterministic per seed:
/// assert_eq!(list, listkit::gen::random_list(1000, 42));
/// ```
pub fn random_list(n: usize, seed: u64) -> LinkedList {
    list_with_layout(n, Layout::Random, seed)
}

/// A list traversed in array order (the cache-friendly best case).
pub fn sequential_list(n: usize) -> LinkedList {
    list_with_layout(n, Layout::Sequential, 0)
}

/// Random list paired with uniform random values in `lo..hi`.
pub fn random_valued_list(n: usize, seed: u64, lo: i64, hi: i64) -> ValuedList<i64> {
    let list = random_list(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let values = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    ValuedList::new(list, values).expect("lengths agree by construction")
}

/// Random list with all values 1 (list ranking as a scan).
pub fn unit_valued_list(n: usize, seed: u64) -> ValuedList<i64> {
    let list = random_list(n, seed);
    let values = vec![1i64; n];
    ValuedList::new(list, values).expect("lengths agree by construction")
}

/// Draw `m` *distinct* random vertices, excluding the tail, as sublist
/// split positions (paper Phase 0: each virtual processor picks a random
/// vertex to be a sublist tail; duplicates are resolved by competition —
/// we model the post-competition survivor set).
///
/// Returns at most `m` positions; fewer if `m` approaches `n-1`.
pub fn random_split_positions(list: &LinkedList, m: usize, rng: &mut StdRng) -> Vec<Idx> {
    let n = list.len();
    let tail = list.tail();
    // Competition semantics: m draws with replacement, duplicates dropped.
    let mut chosen = vec![false; n];
    let mut out = Vec::with_capacity(m);
    for _ in 0..m {
        let v = rng.random_range(0..n as u64) as Idx;
        if v != tail && !chosen[v as usize] {
            chosen[v as usize] = true;
            out.push(v);
        }
    }
    out
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_links;

    #[test]
    fn random_list_is_valid_and_seeded() {
        let a = random_list(1000, 42);
        let b = random_list(1000, 42);
        let c = random_list(1000, 43);
        assert_eq!(a, b, "same seed must reproduce the same list");
        assert_ne!(a, c, "different seeds should differ");
        validate_links(a.links(), a.head()).unwrap();
    }

    #[test]
    fn sequential_and_reversed() {
        let s = sequential_list(5);
        assert_eq!(s.order(), vec![0, 1, 2, 3, 4]);
        let r = list_with_layout(5, Layout::Reversed, 0);
        assert_eq!(r.order(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn strided_layout_covers_all() {
        let l = list_with_layout(8, Layout::Strided(3), 0);
        let mut order = l.order();
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 3);
        order.sort_unstable();
        assert_eq!(order, (0..8).collect::<Vec<Idx>>());
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn strided_layout_rejects_shared_factor() {
        let _ = list_with_layout(8, Layout::Strided(2), 0);
    }

    #[test]
    fn blocked_layout_valid_and_blocky() {
        let l = list_with_layout(100, Layout::Blocked(10), 7);
        validate_links(l.links(), l.head()).unwrap();
        let order = l.order();
        // Within each block of 10, order is consecutive.
        for chunk in order.chunks(10) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }

    #[test]
    fn blocked_layout_handles_ragged_tail_block() {
        let l = list_with_layout(25, Layout::Blocked(10), 3);
        validate_links(l.links(), l.head()).unwrap();
        assert_eq!(l.len(), 25);
    }

    #[test]
    fn valued_lists_have_matching_lengths() {
        let vl = random_valued_list(64, 5, -100, 100);
        assert_eq!(vl.values.len(), 64);
        assert!(vl.values.iter().all(|&v| (-100..100).contains(&v)));
        let ul = unit_valued_list(16, 1);
        assert!(ul.values.iter().all(|&v| v == 1));
    }

    #[test]
    fn split_positions_distinct_and_exclude_tail() {
        let list = random_list(500, 9);
        let mut rng = StdRng::seed_from_u64(11);
        let pos = random_split_positions(&list, 100, &mut rng);
        assert!(pos.len() <= 100);
        assert!(!pos.is_empty());
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pos.len(), "positions must be distinct");
        assert!(pos.iter().all(|&p| p != list.tail()));
    }

    #[test]
    fn fisher_yates_is_permutation() {
        let mut xs: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        fisher_yates(&mut xs, &mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
