//! # listkit — linked-list substrate for the Reid-Miller reproduction
//!
//! The paper represents a linked list as a pair of arrays: a *link* array
//! (`next[v]` is the index of the successor of vertex `v`) and a *value*
//! array. The tail of the list is a **self-loop**: `next[tail] == tail`.
//! This crate provides:
//!
//! * [`LinkedList`] / [`ValuedList`] — the array-of-links representation,
//!   with validated construction;
//! * [`gen`] — deterministic, seedable workload generators (random
//!   permutation order, sequential, reversed, strided, blocked locality);
//! * [`ScanOp`] and concrete operators — the binary associative "sum" of
//!   the paper's list scan, including a non-commutative operator
//!   ([`ops::AffineOp`]) used to verify that implementations respect list
//!   order;
//! * [`serial`] — reference serial list rank / list scan (paper §2.1);
//! * [`sharded`] — chunked representation for lists beyond one worker's
//!   scratch budget: shard-local ranking plus a contracted boundary
//!   list for the cross-shard stitch;
//! * [`dynamic`] — mutable list editing (splice / delete / append)
//!   with touched-vertex tracking, feeding
//!   [`sharded::ShardedList::rebuild_dirty`]'s incremental maintenance;
//! * [`packed`] — the one-gather encoding of (value, link) in a single
//!   64-bit word (paper §3, the list-ranking fast path);
//! * [`walk`] — the K-lane interleaved traversal engine: the modern
//!   analogue of the paper's vectorized sublist traversal, keeping K
//!   independent cache misses in flight per worker so pointer-chasing
//!   hot paths hide DRAM latency instead of serializing on it;
//! * [`validate`] — structural validation with precise error reporting.
//!
//! ## Conventions
//!
//! *Rank* of a vertex = number of vertices preceding it (head has rank 0).
//! *Scan* of a vertex = the operator-sum of the **values of all prior
//! vertices** (exclusive prefix; head gets the identity). This matches the
//! paper: list ranking is list scan with integer addition over all-ones.

// `deny` rather than `forbid`: the [`walk`] module's hot loops opt in
// to unchecked indexing (justified by `LinkedList`'s
// validated-at-construction invariants and shadowed by debug asserts);
// everything else stays unsafe-free.
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod dynamic;
pub mod gen;
pub mod list;
pub mod ops;
pub mod packed;
pub mod segmented;
pub mod serial;
pub mod sharded;
pub mod validate;
pub mod walk;

pub use list::{Idx, LinkedList, ValuedList};
pub use ops::ScanOp;
pub use validate::{ListError, ListTopology};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ListError>;
