//! The array-of-links linked-list representation used throughout the paper.

use crate::validate::{self, ListError};

/// Vertex index type.
///
/// The paper encodes a (value, link) pair in one 64-bit word, which bounds
/// the list length by `2^32`; `u32` indices match that and halve the memory
/// traffic of the link array relative to `usize`.
pub type Idx = u32;

/// A linked list over vertices `0..n`, represented as a link array.
///
/// Invariants (enforced at construction):
/// * `next[v] < n` for all `v`;
/// * exactly one vertex `t` has `next[t] == t` (the tail self-loop);
/// * every vertex is reachable from `head`, i.e. the links form a single
///   simple path `head -> ... -> tail` covering all `n` vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkedList {
    next: Box<[Idx]>,
    head: Idx,
    tail: Idx,
}

impl LinkedList {
    /// Build a list from a link array and head index, validating all
    /// structural invariants in `O(n)`.
    pub fn new(next: Vec<Idx>, head: Idx) -> crate::Result<Self> {
        let topo = validate::validate_links(&next, head)?;
        Ok(Self { next: next.into_boxed_slice(), head, tail: topo.tail })
    }

    /// Build a list whose traversal order is exactly `order` (a permutation
    /// of `0..n`): `order[0]` is the head, `order[n-1]` the tail.
    ///
    /// Returns an error if `order` is not a permutation.
    pub fn from_order(order: &[Idx]) -> crate::Result<Self> {
        let n = order.len();
        if n == 0 {
            return Err(ListError::Empty);
        }
        let mut next = vec![Idx::MAX; n];
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a as usize) >= n || (b as usize) >= n {
                return Err(ListError::NotAPermutation);
            }
            if next[a as usize] != Idx::MAX {
                return Err(ListError::NotAPermutation);
            }
            next[a as usize] = b;
        }
        let tail = order[n - 1];
        if (tail as usize) >= n || next[tail as usize] != Idx::MAX {
            return Err(ListError::NotAPermutation);
        }
        next[tail as usize] = tail;
        if next.contains(&Idx::MAX) {
            return Err(ListError::NotAPermutation);
        }
        Ok(Self { next: next.into_boxed_slice(), head: order[0], tail })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// A list is never empty (construction rejects `n == 0`), so this is
    /// always `false`; provided for clippy-idiomatic completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The head vertex (rank 0).
    #[inline]
    pub fn head(&self) -> Idx {
        self.head
    }

    /// The tail vertex (`next[tail] == tail`).
    #[inline]
    pub fn tail(&self) -> Idx {
        self.tail
    }

    /// Successor of `v`.
    #[inline]
    pub fn next_of(&self, v: Idx) -> Idx {
        self.next[v as usize]
    }

    /// The raw link array.
    #[inline]
    pub fn links(&self) -> &[Idx] {
        &self.next
    }

    /// Whether `v` is the tail.
    #[inline]
    pub fn is_tail(&self, v: Idx) -> bool {
        self.next[v as usize] == v
    }

    /// Iterate over vertices in list order, head to tail (exactly `n`
    /// items).
    pub fn iter(&self) -> ListIter<'_> {
        ListIter { list: self, cur: self.head, remaining: self.len() }
    }

    /// The traversal order as a vector: `order[k]` is the vertex with rank
    /// `k`. Inverse of [`LinkedList::from_order`].
    pub fn order(&self) -> Vec<Idx> {
        self.iter().collect()
    }

    /// Predecessor links: `prev[v]` is the vertex whose successor is `v`;
    /// `prev[head] == head` (mirroring the tail self-loop convention).
    ///
    /// Pointer jumping computes an *exclusive prefix* scan by walking
    /// predecessor links, so the baselines need this. `O(n)` serial; the
    /// `listrank` crate has a parallel scatter version.
    pub fn predecessors(&self) -> Vec<Idx> {
        let n = self.len();
        let mut prev: Vec<Idx> = vec![0; n];
        prev[self.head as usize] = self.head;
        for (v, &nx) in self.next.iter().enumerate() {
            if nx as usize != v {
                prev[nx as usize] = v as Idx;
            }
        }
        prev
    }

    /// Construct from parts whose invariants the caller (same crate)
    /// has already established — skips the `O(n)` validation walk on
    /// release builds. Used by [`crate::sharded`], which builds each
    /// shard's chained local list correct by construction.
    pub(crate) fn from_raw_trusted(next: Vec<Idx>, head: Idx, tail: Idx) -> Self {
        debug_assert!(
            matches!(validate::validate_links(&next, head), Ok(t) if t.tail == tail),
            "trusted construction received an invalid list"
        );
        Self { next: next.into_boxed_slice(), head, tail }
    }

    /// Consume the list, returning the raw link array and head. Used by
    /// backends that mutate links in place (the paper's implementation is
    /// destructive and restores the list afterwards).
    pub fn into_raw(self) -> (Vec<Idx>, Idx) {
        (self.next.into_vec(), self.head)
    }
}

/// Iterator over vertices in list order.
pub struct ListIter<'a> {
    list: &'a LinkedList,
    cur: Idx,
    remaining: usize,
}

impl Iterator for ListIter<'_> {
    type Item = Idx;

    fn next(&mut self) -> Option<Idx> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let v = self.cur;
        self.cur = self.list.next_of(v);
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ListIter<'_> {}

/// A linked list together with a per-vertex value array (the paper's
/// two-array representation for list scan).
#[derive(Clone, Debug, PartialEq)]
pub struct ValuedList<T> {
    /// The link structure.
    pub list: LinkedList,
    /// `values[v]` is the value at vertex `v` (indexed by vertex, not rank).
    pub values: Vec<T>,
}

impl<T> ValuedList<T> {
    /// Pair a list with values; lengths must agree.
    pub fn new(list: LinkedList, values: Vec<T>) -> crate::Result<Self> {
        if values.len() != list.len() {
            return Err(ListError::ValueLengthMismatch { list: list.len(), values: values.len() });
        }
        Ok(Self { list, values })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Never empty; see [`LinkedList::is_empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Values in list order (head first).
    pub fn values_in_order(&self) -> Vec<T>
    where
        T: Copy,
    {
        self.list.iter().map(|v| self.values[v as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_order_roundtrip() {
        let order: Vec<Idx> = vec![3, 1, 4, 0, 2];
        let list = LinkedList::from_order(&order).unwrap();
        assert_eq!(list.len(), 5);
        assert_eq!(list.head(), 3);
        assert_eq!(list.tail(), 2);
        assert_eq!(list.order(), order);
        assert!(list.is_tail(2));
        assert!(!list.is_tail(3));
    }

    #[test]
    fn singleton_list() {
        let list = LinkedList::from_order(&[0]).unwrap();
        assert_eq!(list.head(), 0);
        assert_eq!(list.tail(), 0);
        assert_eq!(list.order(), vec![0]);
    }

    #[test]
    fn from_order_rejects_duplicates() {
        assert!(LinkedList::from_order(&[0, 1, 1]).is_err());
        assert!(LinkedList::from_order(&[0, 0]).is_err());
        assert!(LinkedList::from_order(&[]).is_err());
        assert!(LinkedList::from_order(&[0, 5]).is_err());
    }

    #[test]
    fn new_validates() {
        // 0 -> 1 -> 2 (tail)
        let list = LinkedList::new(vec![1, 2, 2], 0).unwrap();
        assert_eq!(list.tail(), 2);
        // cycle without tail
        assert!(LinkedList::new(vec![1, 2, 0], 0).is_err());
        // out of range link
        assert!(LinkedList::new(vec![1, 9, 2], 0).is_err());
    }

    #[test]
    fn predecessors_invert_links() {
        let order: Vec<Idx> = vec![2, 0, 4, 1, 3];
        let list = LinkedList::from_order(&order).unwrap();
        let prev = list.predecessors();
        assert_eq!(prev[list.head() as usize], list.head());
        for w in order.windows(2) {
            assert_eq!(prev[w[1] as usize], w[0]);
        }
    }

    #[test]
    fn iter_is_exact_size() {
        let list = LinkedList::from_order(&[1, 0, 2]).unwrap();
        let it = list.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn valued_list_checks_len() {
        let list = LinkedList::from_order(&[0, 1]).unwrap();
        assert!(ValuedList::new(list.clone(), vec![1i64]).is_err());
        let vl = ValuedList::new(list, vec![10i64, 20]).unwrap();
        assert_eq!(vl.values_in_order(), vec![10, 20]);
    }

    #[test]
    fn values_in_order_follows_links_not_indices() {
        let list = LinkedList::from_order(&[2, 0, 1]).unwrap();
        let vl = ValuedList::new(list, vec![100i64, 200, 300]).unwrap();
        assert_eq!(vl.values_in_order(), vec![300, 100, 200]);
    }

    #[test]
    fn into_raw_roundtrip() {
        let list = LinkedList::from_order(&[1, 2, 0]).unwrap();
        let (links, head) = list.clone().into_raw();
        let rebuilt = LinkedList::new(links, head).unwrap();
        assert_eq!(rebuilt, list);
    }
}
