//! Scan operators.
//!
//! The paper's list scan computes, for each vertex, the operator-"sum" of
//! the values of all prior vertices, for any **binary associative**
//! operator. Commutativity is *not* required, and several classic
//! applications (function composition along a path, string concatenation,
//! segmented scans) genuinely need a non-commutative operator — so the
//! test suite exercises [`AffineOp`] to catch implementations that
//! accidentally reorder operands.

/// A binary associative operator with identity, over copyable values.
///
/// Laws (checked by property tests, not by the compiler):
/// * associativity: `combine(a, combine(b, c)) == combine(combine(a, b), c)`
/// * identity: `combine(identity(), a) == a == combine(a, identity())`
pub trait ScanOp<T: Copy>: Sync {
    /// Whether `combine` is commutative. Algorithms may exploit this
    /// (e.g. deriving prefixes from suffixes) only when `true`.
    const COMMUTATIVE: bool;

    /// The identity element.
    fn identity(&self) -> T;

    /// Combine two values; `a` precedes `b` in list order.
    fn combine(&self, a: T, b: T) -> T;
}

/// Wrapping 64-bit integer addition — the list-ranking operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddOp;

impl ScanOp<i64> for AddOp {
    const COMMUTATIVE: bool = true;
    #[inline]
    fn identity(&self) -> i64 {
        0
    }
    #[inline]
    fn combine(&self, a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }
}

impl ScanOp<u64> for AddOp {
    const COMMUTATIVE: bool = true;
    #[inline]
    fn identity(&self) -> u64 {
        0
    }
    #[inline]
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }
}

/// Maximum (identity `i64::MIN`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxOp;

impl ScanOp<i64> for MaxOp {
    const COMMUTATIVE: bool = true;
    #[inline]
    fn identity(&self) -> i64 {
        i64::MIN
    }
    #[inline]
    fn combine(&self, a: i64, b: i64) -> i64 {
        a.max(b)
    }
}

/// Minimum (identity `i64::MAX`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinOp;

impl ScanOp<i64> for MinOp {
    const COMMUTATIVE: bool = true;
    #[inline]
    fn identity(&self) -> i64 {
        i64::MAX
    }
    #[inline]
    fn combine(&self, a: i64, b: i64) -> i64 {
        a.min(b)
    }
}

/// Bitwise XOR over `u64` (its own inverse; identity 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XorOp;

impl ScanOp<u64> for XorOp {
    const COMMUTATIVE: bool = true;
    #[inline]
    fn identity(&self) -> u64 {
        0
    }
    #[inline]
    fn combine(&self, a: u64, b: u64) -> u64 {
        a ^ b
    }
}

/// An affine map `x -> a*x + b` over wrapping `i64` arithmetic.
///
/// Composition of affine maps is associative but **not commutative**,
/// which makes scans over [`AffineOp`] a sharp correctness test: any
/// implementation that swaps operand order (e.g. by computing a suffix
/// and "subtracting") produces wrong results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Multiplicative coefficient.
    pub a: i64,
    /// Additive coefficient.
    pub b: i64,
}

impl Affine {
    /// The map `x -> a*x + b`.
    pub fn new(a: i64, b: i64) -> Self {
        Self { a, b }
    }

    /// Apply the map to `x` (wrapping).
    pub fn apply(&self, x: i64) -> i64 {
        self.a.wrapping_mul(x).wrapping_add(self.b)
    }
}

/// Function composition of [`Affine`] maps: `combine(f, g) = g ∘ f`
/// ("first do `f`, then `g`" — matching list order).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AffineOp;

impl ScanOp<Affine> for AffineOp {
    const COMMUTATIVE: bool = false;

    #[inline]
    fn identity(&self) -> Affine {
        Affine { a: 1, b: 0 }
    }

    /// `(g ∘ f)(x) = g(f(x)) = g.a*(f.a*x + f.b) + g.b`.
    #[inline]
    fn combine(&self, f: Affine, g: Affine) -> Affine {
        Affine { a: g.a.wrapping_mul(f.a), b: g.a.wrapping_mul(f.b).wrapping_add(g.b) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_identity_and_combine() {
        let op = AddOp;
        assert_eq!(<AddOp as ScanOp<i64>>::identity(&op), 0);
        assert_eq!(op.combine(2i64, 3i64), 5);
        assert_eq!(op.combine(i64::MAX, 1), i64::MIN); // wrapping
    }

    #[test]
    fn max_min_identities_absorb() {
        assert_eq!(MaxOp.combine(MaxOp.identity(), -7), -7);
        assert_eq!(MinOp.combine(MinOp.identity(), 7), 7);
        assert_eq!(MaxOp.combine(3, 9), 9);
        assert_eq!(MinOp.combine(3, 9), 3);
    }

    #[test]
    fn xor_self_inverse() {
        let op = XorOp;
        assert_eq!(op.combine(0xdead, 0xdead), 0);
        assert_eq!(op.combine(op.identity(), 42), 42);
    }

    #[test]
    fn affine_composition_order_matters() {
        let op = AffineOp;
        let f = Affine::new(2, 1); // x -> 2x+1
        let g = Affine::new(3, 5); // x -> 3x+5
        let fg = op.combine(f, g); // first f then g: 3(2x+1)+5 = 6x+8
        assert_eq!(fg, Affine::new(6, 8));
        let gf = op.combine(g, f); // first g then f: 2(3x+5)+1 = 6x+11
        assert_eq!(gf, Affine::new(6, 11));
        assert_ne!(fg, gf);
        // point check
        assert_eq!(fg.apply(1), g.apply(f.apply(1)));
    }

    #[test]
    fn affine_identity() {
        let op = AffineOp;
        let f = Affine::new(7, -3);
        assert_eq!(op.combine(op.identity(), f), f);
        assert_eq!(op.combine(f, op.identity()), f);
    }

    #[test]
    fn affine_associative_spot_check() {
        let op = AffineOp;
        let (f, g, h) = (Affine::new(2, 3), Affine::new(-1, 4), Affine::new(5, -2));
        assert_eq!(op.combine(f, op.combine(g, h)), op.combine(op.combine(f, g), h));
    }
}
