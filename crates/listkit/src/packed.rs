//! The one-gather packed encoding (paper §3).
//!
//! "For list ranking, we are able to improve the performance of the loop
//! further by reducing the number of gather operations to one ... we
//! encode the link and value data for a vertex into a w-bit integer
//! value, which we can do as long as the list length (and therefore the
//! maximum rank) is no more than 2^(w/2)."
//!
//! With `w = 64`: the high 32 bits hold the value (a rank increment, or a
//! running partial rank), the low 32 bits the link. One 64-bit load per
//! traversal step replaces two 32-bit gathers — on the C90 this halves
//! the load on the single gather/scatter pipe.

use crate::list::{Idx, LinkedList};

/// Number of bits reserved for the link (and for the value).
pub const LINK_BITS: u32 = 32;
/// Maximum list length representable in the packed encoding.
pub const MAX_LEN: usize = (1usize << LINK_BITS) - 1;
const LINK_MASK: u64 = (1u64 << LINK_BITS) - 1;

/// Pack a (value, link) pair into one word.
#[inline]
pub fn pack(value: u32, link: Idx) -> u64 {
    ((value as u64) << LINK_BITS) | (link as u64)
}

/// Extract the value (high half).
#[inline]
pub fn value_of(word: u64) -> u32 {
    (word >> LINK_BITS) as u32
}

/// Extract the link (low half).
#[inline]
pub fn link_of(word: u64) -> Idx {
    (word & LINK_MASK) as Idx
}

/// A linked list with per-vertex `u32` values, stored one word per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedList {
    words: Vec<u64>,
    head: Idx,
}

impl PackedList {
    /// Pack a list with all values 1 (list ranking).
    pub fn for_ranking(list: &LinkedList) -> Self {
        Self::with_values(list, |_| 1)
    }

    /// Pack a list with values given per vertex.
    ///
    /// # Panics
    /// Panics if the list is longer than [`MAX_LEN`].
    pub fn with_values(list: &LinkedList, value: impl Fn(Idx) -> u32) -> Self {
        assert!(list.len() <= MAX_LEN, "list too long for packed encoding");
        let words =
            list.links().iter().enumerate().map(|(v, &nx)| pack(value(v as Idx), nx)).collect();
        Self { words, head: list.head() }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never empty (built from a non-empty [`LinkedList`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Head vertex.
    #[inline]
    pub fn head(&self) -> Idx {
        self.head
    }

    /// The packed words (mutable access for in-place algorithms).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The packed words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serial rank via single-load traversal: demonstrates the one-gather
    /// inner loop. Each step loads exactly one word, adds its value field
    /// into the accumulator and follows its link field.
    pub fn serial_rank(&self) -> Vec<u32> {
        let mut ranks = vec![0u32; self.len()];
        let mut acc = 0u32;
        let mut cur = self.head;
        loop {
            let w = self.words[cur as usize]; // the single gather
            ranks[cur as usize] = acc;
            acc = acc.wrapping_add(value_of(w));
            let nx = link_of(w);
            if nx == cur {
                break;
            }
            cur = nx;
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::serial;

    #[test]
    fn pack_roundtrip() {
        for &(v, l) in &[(0u32, 0u32), (1, 7), (u32::MAX, 12345), (42, u32::MAX)] {
            let w = pack(v, l);
            assert_eq!(value_of(w), v);
            assert_eq!(link_of(w), l);
        }
    }

    #[test]
    fn packed_rank_matches_serial() {
        let list = gen::random_list(333, 77);
        let packed = PackedList::for_ranking(&list);
        let pr = packed.serial_rank();
        let sr = serial::rank(&list);
        for v in 0..333 {
            assert_eq!(pr[v] as u64, sr[v]);
        }
    }

    #[test]
    fn packed_with_custom_values_scans() {
        let list = gen::random_list(64, 5);
        let packed = PackedList::with_values(&list, |v| v + 1);
        // exclusive prefix of (v+1) in list order, computed two ways
        let pr = packed.serial_rank();
        let vals: Vec<i64> = (0..64).map(|v| (v + 1) as i64).collect();
        let s = serial::scan(&list, &vals, &crate::ops::AddOp);
        for v in 0..64usize {
            assert_eq!(pr[v] as i64, s[v]);
        }
    }

    #[test]
    fn singleton_packed() {
        let list = crate::LinkedList::from_order(&[0]).unwrap();
        let packed = PackedList::for_ranking(&list);
        assert_eq!(packed.serial_rank(), vec![0]);
    }
}
