//! Segmented list scans.
//!
//! A *segmented* scan restarts at designated segment-start vertices —
//! the workhorse behind flattening nested data parallelism (Blelloch,
//! whom the paper credits with the underlying algorithm). Segmentation
//! composes with **any** scan operator through the classic
//! flag-carrying operator transform, which is associative but not
//! commutative — so it exercises exactly the operator generality this
//! library guarantees.
//!
//! ```
//! use listkit::ops::AddOp;
//! use listkit::segmented::{self, SegOp};
//!
//! let list = listkit::gen::sequential_list(6);
//! let values = [1i64, 2, 3, 4, 5, 6];
//! let starts = [true, false, false, true, false, false]; // two segments
//! let wrapped = segmented::wrap(&values, &starts);
//! let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AddOp));
//! let out = segmented::unwrap_exclusive(&scanned, &starts, &AddOp);
//! assert_eq!(out, vec![0, 1, 3, 0, 4, 9]); // restarts at vertex 3
//! ```

use crate::ops::ScanOp;
use crate::LinkedList;

/// A value paired with a "segment started here or later" flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segmented<T> {
    /// Whether the covered range contains a segment start.
    pub flag: bool,
    /// Aggregated value since the last segment start in the range.
    pub value: T,
}

/// The segmented transform of an operator `Op`.
///
/// `combine(x, y)` keeps `y.value` alone if `y`'s range starts a new
/// segment, otherwise accumulates across the ranges. Associative for
/// any associative `Op`; never commutative.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegOp<Op>(pub Op);

impl<T: Copy, Op: ScanOp<T>> ScanOp<Segmented<T>> for SegOp<Op> {
    const COMMUTATIVE: bool = false;

    fn identity(&self) -> Segmented<T> {
        Segmented { flag: false, value: self.0.identity() }
    }

    fn combine(&self, a: Segmented<T>, b: Segmented<T>) -> Segmented<T> {
        Segmented {
            flag: a.flag || b.flag,
            value: if b.flag { b.value } else { self.0.combine(a.value, b.value) },
        }
    }
}

/// Wrap per-vertex values and segment-start flags for a segmented scan.
pub fn wrap<T: Copy>(values: &[T], starts: &[bool]) -> Vec<Segmented<T>> {
    assert_eq!(values.len(), starts.len());
    values.iter().zip(starts).map(|(&value, &flag)| Segmented { flag, value }).collect()
}

/// Extract the exclusive segmented scan from a plain exclusive scan of
/// wrapped values: a segment-start vertex restarts at the identity.
pub fn unwrap_exclusive<T: Copy, Op: ScanOp<T>>(
    scanned: &[Segmented<T>],
    starts: &[bool],
    op: &Op,
) -> Vec<T> {
    assert_eq!(scanned.len(), starts.len());
    scanned
        .iter()
        .zip(starts)
        .map(|(s, &is_start)| if is_start { op.identity() } else { s.value })
        .collect()
}

/// Serial reference: exclusive segmented scan (each vertex gets the
/// op-sum of the values strictly before it *within its segment*; the
/// head always starts a segment).
pub fn serial_segmented_scan<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    starts: &[bool],
    op: &Op,
) -> Vec<T> {
    assert_eq!(values.len(), list.len());
    assert_eq!(starts.len(), list.len());
    let mut out = vec![op.identity(); list.len()];
    let mut acc = op.identity();
    for v in list.iter() {
        let vi = v as usize;
        if starts[vi] {
            acc = op.identity();
        }
        out[vi] = acc;
        acc = op.combine(acc, values[vi]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ops::{AddOp, MaxOp};
    use crate::serial;

    fn starts_every(list: &LinkedList, k: usize) -> Vec<bool> {
        let mut starts = vec![false; list.len()];
        for (pos, v) in list.iter().enumerate() {
            if pos % k == 0 {
                starts[v as usize] = true;
            }
        }
        starts
    }

    #[test]
    fn segop_is_associative() {
        let op = SegOp(AddOp);
        let xs = [
            Segmented { flag: false, value: 3i64 },
            Segmented { flag: true, value: 5 },
            Segmented { flag: false, value: 7 },
            Segmented { flag: true, value: -2 },
        ];
        for a in xs {
            for b in xs {
                for c in xs {
                    assert_eq!(op.combine(a, op.combine(b, c)), op.combine(op.combine(a, b), c));
                }
            }
        }
    }

    #[test]
    fn plain_scan_of_wrapped_equals_segmented_reference() {
        let list = gen::random_list(600, 9);
        let values: Vec<i64> = (0..600).map(|i| (i % 13) as i64 - 6).collect();
        let starts = starts_every(&list, 37);
        let wrapped = wrap(&values, &starts);
        let scanned = serial::scan(&list, &wrapped, &SegOp(AddOp));
        let got = unwrap_exclusive(&scanned, &starts, &AddOp);
        let want = serial_segmented_scan(&list, &values, &starts, &AddOp);
        assert_eq!(got, want);
    }

    #[test]
    fn segmented_max() {
        let list = gen::random_list(300, 2);
        let values: Vec<i64> = (0..300).map(|i| ((i * 31) % 100) as i64).collect();
        let starts = starts_every(&list, 25);
        let wrapped = wrap(&values, &starts);
        let scanned = serial::scan(&list, &wrapped, &SegOp(MaxOp));
        let got = unwrap_exclusive(&scanned, &starts, &MaxOp);
        assert_eq!(got, serial_segmented_scan(&list, &values, &starts, &MaxOp));
    }

    #[test]
    fn single_segment_is_plain_scan() {
        let list = gen::random_list(200, 4);
        let values: Vec<i64> = (0..200).map(|i| i as i64).collect();
        let mut starts = vec![false; 200];
        starts[list.head() as usize] = true;
        assert_eq!(
            serial_segmented_scan(&list, &values, &starts, &AddOp),
            serial::scan(&list, &values, &AddOp)
        );
    }

    #[test]
    fn every_vertex_a_segment_gives_identities() {
        let list = gen::random_list(64, 5);
        let values = vec![7i64; 64];
        let starts = vec![true; 64];
        let out = serial_segmented_scan(&list, &values, &starts, &AddOp);
        assert!(out.iter().all(|&x| x == 0));
    }
}
