//! The serial reference algorithms (paper §2.1).
//!
//! "The serial list-scan algorithm simply walks down the list storing the
//! accumulated values of the previous vertices until it reaches the end
//! of the list." All parallel implementations are tested against these.

use crate::list::{Idx, LinkedList};
use crate::ops::ScanOp;

/// Serial list ranking: `rank[v]` = number of vertices before `v`.
pub fn rank(list: &LinkedList) -> Vec<u64> {
    let mut ranks = Vec::new();
    rank_into(list, &mut ranks);
    ranks
}

/// [`rank`] into a caller-provided buffer (cleared and resized; its
/// allocation is reused when capacity suffices). The no-alloc entry
/// point batch executors thread their buffer pools through.
pub fn rank_into(list: &LinkedList, out: &mut Vec<u64>) {
    out.clear();
    out.resize(list.len(), 0);
    for (r, v) in list.iter().enumerate() {
        out[v as usize] = r as u64;
    }
}

/// Serial exclusive list scan: `out[v]` = op-sum of the values of all
/// vertices strictly before `v`; the head gets the identity.
pub fn scan<T: Copy, Op: ScanOp<T>>(list: &LinkedList, values: &[T], op: &Op) -> Vec<T> {
    let mut out = Vec::new();
    scan_into(list, values, op, &mut out);
    out
}

/// [`scan`] into a caller-provided buffer (cleared and resized; its
/// allocation is reused when capacity suffices).
pub fn scan_into<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    out: &mut Vec<T>,
) {
    assert_eq!(values.len(), list.len(), "value array length mismatch");
    out.clear();
    out.resize(list.len(), op.identity());
    let mut acc = op.identity();
    for v in list.iter() {
        out[v as usize] = acc;
        acc = op.combine(acc, values[v as usize]);
    }
}

/// Serial inclusive list scan: `out[v]` includes `values[v]` itself.
pub fn scan_inclusive<T: Copy, Op: ScanOp<T>>(list: &LinkedList, values: &[T], op: &Op) -> Vec<T> {
    let mut out = Vec::new();
    scan_inclusive_into(list, values, op, &mut out);
    out
}

/// [`scan_inclusive`] into a caller-provided buffer (cleared and
/// resized; its allocation is reused when capacity suffices). Returns
/// the final carry — the same value [`total`] computes — so a caller
/// needing both does one walk instead of two.
pub fn scan_inclusive_into<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    out: &mut Vec<T>,
) -> T {
    assert_eq!(values.len(), list.len(), "value array length mismatch");
    out.clear();
    out.resize(list.len(), op.identity());
    let mut acc = op.identity();
    for v in list.iter() {
        acc = op.combine(acc, values[v as usize]);
        out[v as usize] = acc;
    }
    acc
}

/// Total op-sum of all values in list order (the scan's final carry).
/// Allocation-free: one pointer-chase pass, no output array.
pub fn total<T: Copy, Op: ScanOp<T>>(list: &LinkedList, values: &[T], op: &Op) -> T {
    let mut acc = op.identity();
    for v in list.iter() {
        acc = op.combine(acc, values[v as usize]);
    }
    acc
}

/// Reorder per-vertex data into list order using ranks — the paper's
/// motivating application ("reorder the vertices of a linked list into an
/// array in one parallel step").
pub fn reorder_by_rank<T: Copy + Default>(ranks: &[u64], data: &[T]) -> Vec<T> {
    assert_eq!(ranks.len(), data.len());
    let mut out = vec![T::default(); data.len()];
    for (v, &r) in ranks.iter().enumerate() {
        out[r as usize] = data[v];
    }
    out
}

/// Rebuild the list-order permutation from ranks: `order[r]` = vertex with
/// rank `r`.
pub fn order_from_ranks(ranks: &[u64]) -> Vec<Idx> {
    let mut order = vec![0 as Idx; ranks.len()];
    for (v, &r) in ranks.iter().enumerate() {
        order[r as usize] = v as Idx;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ops::{AddOp, Affine, AffineOp, MaxOp};

    #[test]
    fn rank_matches_order() {
        let list = gen::random_list(257, 12);
        let ranks = rank(&list);
        let order = list.order();
        for (r, v) in order.iter().enumerate() {
            assert_eq!(ranks[*v as usize], r as u64);
        }
        // ranks are a permutation of 0..n
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257u64).collect::<Vec<_>>());
    }

    #[test]
    fn scan_of_ones_is_rank() {
        let list = gen::random_list(100, 3);
        let ones = vec![1i64; 100];
        let s = scan(&list, &ones, &AddOp);
        let r = rank(&list);
        for v in 0..100 {
            assert_eq!(s[v] as u64, r[v]);
        }
    }

    #[test]
    fn exclusive_vs_inclusive() {
        let list = gen::random_list(50, 4);
        let vals: Vec<i64> = (0..50).map(|i| i * i - 17).collect();
        let ex = scan(&list, &vals, &AddOp);
        let inc = scan_inclusive(&list, &vals, &AddOp);
        for v in 0..50usize {
            assert_eq!(inc[v], ex[v] + vals[v]);
        }
        assert_eq!(ex[list.head() as usize], 0);
        assert_eq!(inc[list.tail() as usize], vals.iter().sum::<i64>());
    }

    #[test]
    fn max_scan() {
        let list = crate::LinkedList::from_order(&[2, 0, 1]).unwrap();
        // values by vertex: v0=5, v1=9, v2=3; list order: 3, 5, 9
        let vals = vec![5i64, 9, 3];
        let s = scan(&list, &vals, &MaxOp);
        assert_eq!(s[2], i64::MIN); // head: identity
        assert_eq!(s[0], 3);
        assert_eq!(s[1], 5);
    }

    #[test]
    fn affine_scan_respects_order() {
        let list = gen::random_list(64, 8);
        let funcs: Vec<Affine> =
            (0..64).map(|i| Affine::new((i % 5) as i64 - 2, i as i64)).collect();
        let s = scan(&list, &funcs, &AffineOp);
        // Check by direct composition along the order.
        let order = list.order();
        let mut acc = AffineOp.identity();
        for &v in &order {
            assert_eq!(s[v as usize], acc, "exclusive prefix at vertex {v}");
            acc = AffineOp.combine(acc, funcs[v as usize]);
        }
        assert_eq!(total(&list, &funcs, &AffineOp), acc);
    }

    #[test]
    fn reorder_roundtrip() {
        let list = gen::random_list(40, 2);
        let ranks = rank(&list);
        let data: Vec<i64> = (0..40).map(|v| v * 7).collect();
        let in_order = reorder_by_rank(&ranks, &data);
        let order = list.order();
        for (k, &v) in order.iter().enumerate() {
            assert_eq!(in_order[k], data[v as usize]);
        }
        assert_eq!(order_from_ranks(&ranks), order);
    }
}
