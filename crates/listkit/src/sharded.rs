//! Shard-parallel representation for lists too large for one worker.
//!
//! Reid-Miller's trade — a little extra work for locality and long
//! vectors — generalizes one level up: a list whose link array exceeds a
//! worker's scratch budget is **sharded** into contiguous index ranges.
//! Each shard stores the list structure restricted to its own vertices
//! as a *per-shard successor array*, and the edges that leave a shard
//! are contracted into a [`BoundaryTable`]. Ranking then proceeds in
//! three phases:
//!
//! 1. **Shard-local rank** — inside a shard the list decomposes into
//!    *fragments* (maximal runs of the global traversal that stay in the
//!    shard). The fragments are chained head-to-tail into one valid
//!    local list, so the existing no-alloc serial ranker
//!    ([`crate::serial::rank_into`]) computes every vertex's offset
//!    within its fragment in one cache-friendly pass. All shards run in
//!    parallel on the rayon pool.
//! 2. **Stitch** — the contracted boundary list (one vertex per
//!    fragment, weighted by fragment length) is scanned to find each
//!    fragment's global starting rank. This list is tiny when the input
//!    has locality and can itself be ranked by any backend (see
//!    [`BoundaryTable::to_list`]); [`BoundaryTable::serial_prefix`] is
//!    the serial reference. Higher layers dispatch this step through
//!    `rankmodel::predict`.
//! 3. **Broadcast** — each shard adds its fragments' global offsets to
//!    the local ranks and writes its contiguous slice of the output, in
//!    parallel, with pure array arithmetic (no pointer chasing).
//!
//! The result is byte-identical to [`crate::serial::rank`] for every
//! topology: ranks are exact integers, so there is no tolerance to
//! negotiate.
//!
//! ```
//! use listkit::sharded::ShardedList;
//!
//! let list = listkit::gen::list_with_layout(10_000, listkit::gen::Layout::Blocked(64), 7);
//! let sharded = ShardedList::build(&list, 1024);
//! assert_eq!(sharded.rank(), listkit::serial::rank(&list));
//! ```

use crate::list::{Idx, LinkedList};
use crate::ops::ScanOp;
use crate::walk::{self, LaneStats, LaneTelemetry, WalkPolicy};
use rayon::prelude::*;
use std::sync::Arc;

/// The contracted list of fragments: one vertex per fragment, linked by
/// the cross-shard edges, weighted by fragment length.
///
/// `next[f]` is the fragment the global traversal enters after fragment
/// `f` ends (self-loop at the fragment containing the global tail);
/// `lens[f]` is the number of vertices in fragment `f`.
#[derive(Clone, Debug)]
pub struct BoundaryTable {
    next: Vec<Idx>,
    head: Idx,
    lens: Vec<u32>,
}

impl BoundaryTable {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.next.len()
    }

    /// The fragment containing the global head.
    pub fn head(&self) -> Idx {
        self.head
    }

    /// Fragment successor links (self-loop at the final fragment).
    pub fn links(&self) -> &[Idx] {
        &self.next
    }

    /// Per-fragment vertex counts.
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// The contracted list as a validated [`LinkedList`], so any
    /// ranking/scan backend can run the stitch phase.
    pub fn to_list(&self) -> LinkedList {
        LinkedList::new(self.next.clone(), self.head)
            .expect("contracted boundary list is a single valid path by construction")
    }

    /// Serial stitch reference: `prefix[f]` = number of vertices before
    /// fragment `f`'s first vertex in global list order (an exclusive
    /// scan of `lens` along the contracted list).
    pub fn serial_prefix(&self) -> Vec<u64> {
        let mut prefix = Vec::new();
        self.serial_prefix_into(&mut prefix);
        prefix
    }

    /// [`Self::serial_prefix`] into a caller-provided buffer (cleared
    /// and resized; its allocation is reused when capacity suffices) —
    /// the no-alloc entry batch executors stitch through.
    pub fn serial_prefix_into(&self, prefix: &mut Vec<u64>) {
        prefix.clear();
        prefix.resize(self.next.len(), 0);
        let mut acc = 0u64;
        let mut cur = self.head as usize;
        loop {
            prefix[cur] = acc;
            acc += self.lens[cur] as u64;
            if self.next[cur] as usize == cur {
                break;
            }
            cur = self.next[cur] as usize;
        }
    }

    /// Generic serial stitch: the exclusive op-scan of per-fragment
    /// values (e.g. fragment totals from
    /// [`ShardedList::fragment_totals`]) along the contracted list —
    /// the scan analogue of [`Self::serial_prefix`]. Fragment order
    /// along the contracted list *is* global list order, so this is
    /// safe for non-commutative operators.
    pub fn serial_exclusive<T: Copy, Op: ScanOp<T>>(&self, totals: &[T], op: &Op) -> Vec<T> {
        let mut prefix = Vec::new();
        self.serial_exclusive_into(totals, op, &mut prefix);
        prefix
    }

    /// [`Self::serial_exclusive`] into a caller-provided buffer
    /// (cleared and resized; its allocation is reused when capacity
    /// suffices) — the generic-`T` counterpart of
    /// [`Self::serial_prefix_into`]. Unlike the rank stitch, whose
    /// `u64` prefix lives in a pooled scratch buffer, a generic scan's
    /// prefix buffer is owned by the caller (a `Vec<T>` cannot be
    /// pooled monomorphically), so reuse is per call site.
    pub fn serial_exclusive_into<T: Copy, Op: ScanOp<T>>(
        &self,
        totals: &[T],
        op: &Op,
        prefix: &mut Vec<T>,
    ) {
        assert_eq!(totals.len(), self.next.len(), "one total per fragment");
        prefix.clear();
        prefix.resize(self.next.len(), op.identity());
        let mut acc = op.identity();
        let mut cur = self.head as usize;
        loop {
            prefix[cur] = acc;
            acc = op.combine(acc, totals[cur]);
            if self.next[cur] as usize == cur {
                break;
            }
            cur = self.next[cur] as usize;
        }
    }
}

/// One shard: the list structure restricted to a contiguous vertex
/// range, with its fragments chained into a single local list.
#[derive(Clone, Debug)]
struct Shard {
    /// Per-shard successor array: the shard's fragments chained
    /// head-to-tail in discovery order, over local indices. Shared
    /// (`Arc`) so [`ShardedList::rebuild_dirty`] can reuse a clean
    /// shard's structure without copying its link array.
    local: Arc<LinkedList>,
    /// Local head vertex of each fragment, discovery order — the chain
    /// seeds the K-lane fragment walker interleaves over.
    frag_heads_local: Vec<Idx>,
    /// Global id of this shard's first fragment (its fragments are the
    /// contiguous id range `frag_off..frag_off + frag_cnt`, in the same
    /// discovery order the chaining uses).
    frag_off: usize,
    /// Number of fragments in this shard.
    frag_cnt: usize,
}

/// Per-shard build output, assembled into [`ShardedList`] afterwards.
struct ShardBuild {
    local_next: Vec<Idx>,
    local_head: Idx,
    local_tail: Idx,
    /// Global head vertex of each fragment, discovery order.
    frag_heads: Vec<Idx>,
    /// Vertex count of each fragment.
    frag_lens: Vec<u32>,
    /// Global vertex the traversal enters after each fragment
    /// (`Idx::MAX` for the fragment ending at the global tail).
    frag_exits: Vec<Idx>,
}

/// A list chunked into contiguous index-range shards (see the module
/// docs for the ranking pipeline).
#[derive(Debug)]
pub struct ShardedList {
    n: usize,
    shard_size: usize,
    shards: Vec<Shard>,
    boundary: BoundaryTable,
    /// Lane policy for the shard-local fragment walks.
    policy: WalkPolicy,
    /// Accumulated lane occupancy across this list's walks.
    telemetry: LaneTelemetry,
}

impl ShardedList {
    /// Shard `list` into contiguous index ranges of at most
    /// `shard_size` vertices. Shards are built in parallel; each build
    /// reads only the global link array.
    ///
    /// # Panics
    /// Panics if `shard_size == 0`.
    pub fn build(list: &LinkedList, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        let n = list.len();
        let shard_count = n.div_ceil(shard_size);
        let builds: Vec<ShardBuild> = (0..shard_count)
            .into_par_iter()
            .with_min_len(1)
            .map(|s| {
                let lo = s * shard_size;
                let hi = (lo + shard_size).min(n);
                build_shard(list, lo, hi)
            })
            .collect();

        // Assemble the boundary table: fragments get globally
        // contiguous ids in (shard, discovery) order, and exits resolve
        // through a head-vertex -> fragment-id map.
        let total_frags: usize = builds.iter().map(|b| b.frag_heads.len()).sum();
        let mut head_frag = vec![u32::MAX; n];
        let mut off = 0usize;
        for b in &builds {
            for (j, &h) in b.frag_heads.iter().enumerate() {
                head_frag[h as usize] = (off + j) as u32;
            }
            off += b.frag_heads.len();
        }
        let mut next = Vec::with_capacity(total_frags);
        let mut lens = Vec::with_capacity(total_frags);
        let mut shards = Vec::with_capacity(shard_count);
        let mut off = 0usize;
        let mut shard_lo = 0usize;
        for b in builds {
            let frag_cnt = b.frag_heads.len();
            for (j, (&exit, &len)) in b.frag_exits.iter().zip(&b.frag_lens).enumerate() {
                let f = off + j;
                next.push(if exit == Idx::MAX { f as Idx } else { head_frag[exit as usize] });
                lens.push(len);
            }
            let frag_heads_local =
                b.frag_heads.iter().map(|&h| (h as usize - shard_lo) as Idx).collect();
            shards.push(Shard {
                local: Arc::new(LinkedList::from_raw_trusted(
                    b.local_next,
                    b.local_head,
                    b.local_tail,
                )),
                frag_heads_local,
                frag_off: off,
                frag_cnt,
            });
            off += frag_cnt;
            shard_lo += shard_size;
        }
        let head = head_frag[list.head() as usize];
        debug_assert_ne!(head, u32::MAX, "global head starts a fragment");
        ShardedList {
            n,
            shard_size,
            shards,
            boundary: BoundaryTable { next, head, lens },
            policy: WalkPolicy::default(),
            telemetry: LaneTelemetry::new(),
        }
    }

    /// Set the lane count for this list's shard-local fragment walks
    /// (see [`crate::walk`]). Lane count never changes results — only
    /// how many cache misses stay in flight per worker.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.policy = WalkPolicy::with_lanes(lanes);
        self
    }

    /// The lane policy the fragment walks run under.
    pub fn policy(&self) -> WalkPolicy {
        self.policy
    }

    /// Lane-occupancy telemetry accumulated over every walk this list
    /// has run (see [`LaneStats`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.telemetry.snapshot()
    }

    /// Number of vertices in the underlying list.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (lists have ≥ 1 vertex).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-shard vertex budget this list was built with.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of fragments across all shards (the contracted list's
    /// length — the cross-shard "surface area" of this topology).
    pub fn fragment_count(&self) -> usize {
        self.boundary.fragment_count()
    }

    /// The contracted boundary list.
    pub fn boundary(&self) -> &BoundaryTable {
        &self.boundary
    }

    /// Rebuild this decomposition against a mutated `list`, re-deriving
    /// only the shards named in `dirty` and **sharing** every other
    /// shard's local structure (the `Arc`'d link array, fragment heads
    /// and fragment rows are reused as-is). The boundary table is
    /// re-assembled by resolving each fragment's exit vertex to a new
    /// fragment id: in `O(fragments · log)` through the (ascending)
    /// head list of its target shard when fragments are sparse, or via
    /// an `O(n)` direct head map (the same structure `build` uses) when
    /// fragments are dense enough that per-exit binary searches would
    /// cost more than one pass over the vertices.
    ///
    /// `dirty` must name every shard whose vertex range or restricted
    /// link structure differs from build time
    /// ([`crate::dynamic::EditReport::dirty_shards`] computes exactly
    /// this set); shards past the old grid are rebuilt unconditionally,
    /// and stale indices past the new grid are ignored. The result is
    /// byte-identical to `ShardedList::build(list, shard_size)` — the
    /// incremental path is an optimization, never a semantic.
    ///
    /// # Panics
    /// Panics if a shard whose vertex range changed (the list grew or
    /// shrank across its boundary) is not marked dirty.
    pub fn rebuild_dirty(&self, list: &LinkedList, dirty: &[usize]) -> ShardedList {
        let n = list.len();
        let shard_size = self.shard_size;
        let new_count = n.div_ceil(shard_size);
        let mut is_dirty = vec![false; new_count];
        for &s in dirty {
            if s < new_count {
                is_dirty[s] = true;
            }
        }
        for flag in is_dirty.iter_mut().skip(self.shards.len()) {
            *flag = true; // shards beyond the old grid are new
        }
        for (s, flag) in is_dirty.iter().enumerate() {
            if !flag {
                let hi = ((s + 1) * shard_size).min(n);
                let old_hi = ((s + 1) * shard_size).min(self.n);
                assert!(hi == old_hi, "shard {s}: vertex range changed but not marked dirty");
            }
        }
        // Old fragment id -> head vertex, to recover reused shards'
        // exit vertices from the old boundary rows.
        let mut old_head_vertex = vec![0 as Idx; self.boundary.fragment_count()];
        for (s, shard) in self.shards.iter().enumerate() {
            let lo = (s * shard_size) as Idx;
            for (j, &h) in shard.frag_heads_local.iter().enumerate() {
                old_head_vertex[shard.frag_off + j] = lo + h;
            }
        }
        // Re-derive dirty shards in parallel (same builder as `build`).
        let todo: Vec<usize> = (0..new_count).filter(|&s| is_dirty[s]).collect();
        let fresh: Vec<ShardBuild> = todo
            .par_iter()
            .with_min_len(1)
            .map(|&s| {
                let lo = s * shard_size;
                build_shard(list, lo, (lo + shard_size).min(n))
            })
            .collect();
        // Stitch reused and fresh shards into the new id space,
        // collecting per-fragment lengths and exit *vertices* (resolved
        // to fragment ids once every head list exists).
        let mut shards = Vec::with_capacity(new_count);
        let mut lens: Vec<u32> = Vec::new();
        let mut exits: Vec<Idx> = Vec::new();
        let mut off = 0usize;
        let mut fresh = fresh.into_iter();
        for (s, &rebuild) in is_dirty.iter().enumerate() {
            if rebuild {
                let b = fresh.next().expect("one build per dirty shard");
                let shard_lo = s * shard_size;
                let frag_cnt = b.frag_heads.len();
                lens.extend_from_slice(&b.frag_lens);
                exits.extend_from_slice(&b.frag_exits);
                let frag_heads_local =
                    b.frag_heads.iter().map(|&h| (h as usize - shard_lo) as Idx).collect();
                shards.push(Shard {
                    local: Arc::new(LinkedList::from_raw_trusted(
                        b.local_next,
                        b.local_head,
                        b.local_tail,
                    )),
                    frag_heads_local,
                    frag_off: off,
                    frag_cnt,
                });
                off += frag_cnt;
            } else {
                let old = &self.shards[s];
                for f in old.frag_off..old.frag_off + old.frag_cnt {
                    lens.push(self.boundary.lens[f]);
                    let g = self.boundary.next[f] as usize;
                    exits.push(if g == f { Idx::MAX } else { old_head_vertex[g] });
                }
                shards.push(Shard {
                    local: Arc::clone(&old.local),
                    frag_heads_local: old.frag_heads_local.clone(),
                    frag_off: off,
                    frag_cnt: old.frag_cnt,
                });
                off += old.frag_cnt;
            }
        }
        let resolve = |v: Idx| -> Idx {
            let s = v as usize / shard_size;
            let local = (v as usize - s * shard_size) as Idx;
            let j = shards[s]
                .frag_heads_local
                .binary_search(&local)
                .expect("cross-shard edges land on fragment heads");
            (shards[s].frag_off + j) as Idx
        };
        // Boundary-heavy topologies have O(n) fragments, so the exit
        // resolution is the patch's dominant cost. Per-exit binary
        // searches touch `fragments · log(shard heads)` cache lines;
        // once that exceeds one pass over the vertices it is cheaper to
        // materialize the same O(n) head map `build` uses and resolve
        // each exit with a single read. Either way, run it in parallel.
        let total_frags = lens.len();
        let next: Vec<Idx> = if total_frags.saturating_mul(16) >= n {
            let mut head_frag = vec![Idx::MAX; n];
            for (s, shard) in shards.iter().enumerate() {
                let lo = s * shard_size;
                for (j, &h) in shard.frag_heads_local.iter().enumerate() {
                    head_frag[lo + h as usize] = (shard.frag_off + j) as Idx;
                }
            }
            exits
                .par_iter()
                .with_min_len(4096)
                .enumerate()
                .map(
                    |(f, &exit)| {
                        if exit == Idx::MAX {
                            f as Idx
                        } else {
                            head_frag[exit as usize]
                        }
                    },
                )
                .collect()
        } else {
            exits
                .par_iter()
                .with_min_len(4096)
                .enumerate()
                .map(|(f, &exit)| if exit == Idx::MAX { f as Idx } else { resolve(exit) })
                .collect()
        };
        let head = resolve(list.head());
        ShardedList {
            n,
            shard_size,
            shards,
            boundary: BoundaryTable { next, head, lens },
            policy: self.policy,
            telemetry: LaneTelemetry::new(),
        }
    }

    /// Rank the list: shard-local ranking and broadcast run in
    /// parallel, the stitch is the serial reference. Byte-identical to
    /// [`crate::serial::rank`].
    pub fn rank(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.rank_into(&mut out);
        out
    }

    /// [`Self::rank`] into a caller-provided buffer.
    pub fn rank_into(&self, out: &mut Vec<u64>) {
        let prefix = self.boundary.serial_prefix();
        self.rank_into_with_prefix(&prefix, out);
    }

    /// Shard-local rank + broadcast, given the stitch result: `prefix[f]`
    /// must be the global rank of fragment `f`'s first vertex (as
    /// produced by [`BoundaryTable::serial_prefix`] or by any scan of
    /// [`BoundaryTable::lens`] along [`BoundaryTable::to_list`]).
    ///
    /// Shards run in parallel; each writes exactly its contiguous slice
    /// of `out`.
    pub fn rank_into_with_prefix(&self, prefix: &[u64], out: &mut Vec<u64>) {
        assert_eq!(
            prefix.len(),
            self.boundary.fragment_count(),
            "stitch prefix length must equal the fragment count"
        );
        out.clear();
        out.resize(self.n, 0);
        let boundary = &self.boundary;
        let (policy, telemetry) = (self.policy, &self.telemetry);
        let work: Vec<(&Shard, &mut [u64])> =
            self.shards.iter().zip(out.chunks_mut(self.shard_size)).collect();
        work.into_par_iter().with_min_len(1).for_each(|(shard, chunk)| {
            // K-lane interleaved fragment walk: fragment `j` starts at
            // its local head with global rank `prefix[frag_off + j]`
            // and writes ranks straight into the shard's output chunk —
            // no local-rank array, no adjust pass, K misses in flight.
            let lens = &boundary.lens[shard.frag_off..shard.frag_off + shard.frag_cnt];
            let seeds = &prefix[shard.frag_off..shard.frag_off + shard.frag_cnt];
            let mut stats = LaneStats::default();
            walk::expand_rank_runs(
                &shard.local,
                &shard.frag_heads_local,
                lens,
                seeds,
                policy,
                chunk,
                &mut stats,
            );
            telemetry.add(&stats);
        });
    }

    /// Per-fragment operator totals: `totals[f]` = op-sum of the values
    /// of fragment `f`'s vertices in list order — the generic scan's
    /// Phase-1 analogue of [`BoundaryTable::lens`]. All shards run in
    /// parallel; each walks its cache-resident local list once.
    pub fn fragment_totals<T, Op>(&self, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), self.n, "value array length mismatch");
        let boundary = &self.boundary;
        let mut totals = vec![op.identity(); boundary.fragment_count()];
        // Fragment ids are contiguous per shard, so the totals array
        // splits into disjoint per-shard chunks.
        let mut work: Vec<(usize, &Shard, &mut [T])> = Vec::with_capacity(self.shards.len());
        let mut rest: &mut [T] = &mut totals;
        for (s, shard) in self.shards.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut(shard.frag_cnt);
            work.push((s, shard, chunk));
            rest = tail;
        }
        let (policy, telemetry) = (self.policy, &self.telemetry);
        work.into_par_iter().with_min_len(1).for_each(|(s, shard, tchunk)| {
            let lo = s * self.shard_size;
            let lens = &boundary.lens[shard.frag_off..shard.frag_off + shard.frag_cnt];
            let vchunk = &values[lo..lo + shard.local.len()];
            let mut stats = LaneStats::default();
            walk::reduce_runs(
                &shard.local,
                vchunk,
                op,
                &shard.frag_heads_local,
                lens,
                policy,
                tchunk,
                &mut stats,
            );
            telemetry.add(&stats);
        });
        totals
    }

    /// Generic exclusive scan along the list: shard-local passes and
    /// broadcast run in parallel, the stitch is the serial reference.
    /// Byte-identical to [`crate::serial::scan`] for any associative
    /// operator (commutative or not).
    pub fn scan<T, Op>(&self, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        let mut out = Vec::new();
        self.scan_into(values, op, &mut out);
        out
    }

    /// [`Self::scan`] into a caller-provided buffer.
    pub fn scan_into<T, Op>(&self, values: &[T], op: &Op, out: &mut Vec<T>)
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        let totals = self.fragment_totals(values, op);
        let prefix = self.boundary.serial_exclusive(&totals, op);
        self.scan_into_with_prefix(values, op, &prefix, out);
    }

    /// Phase 3 of the generic scan, given the stitch result:
    /// `prefix[f]` must be the exclusive op-scan of fragment totals
    /// along the contracted list (from [`BoundaryTable::
    /// serial_exclusive`] or any scan backend run over
    /// [`BoundaryTable::to_list`]). Each shard re-walks its local list
    /// seeding every fragment with its global prefix — one fused pass,
    /// no per-vertex fragment map.
    pub fn scan_into_with_prefix<T, Op>(
        &self,
        values: &[T],
        op: &Op,
        prefix: &[T],
        out: &mut Vec<T>,
    ) where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), self.n, "value array length mismatch");
        assert_eq!(
            prefix.len(),
            self.boundary.fragment_count(),
            "stitch prefix length must equal the fragment count"
        );
        out.clear();
        out.resize(self.n, op.identity());
        let boundary = &self.boundary;
        let (policy, telemetry) = (self.policy, &self.telemetry);
        let work: Vec<((usize, &Shard), &mut [T])> =
            self.shards.iter().enumerate().zip(out.chunks_mut(self.shard_size)).collect();
        work.into_par_iter().with_min_len(1).for_each(|((s, shard), chunk)| {
            let lo = s * self.shard_size;
            let lens = &boundary.lens[shard.frag_off..shard.frag_off + shard.frag_cnt];
            let seeds = &prefix[shard.frag_off..shard.frag_off + shard.frag_cnt];
            let vchunk = &values[lo..lo + shard.local.len()];
            let mut stats = LaneStats::default();
            walk::expand_runs(
                &shard.local,
                vchunk,
                op,
                &shard.frag_heads_local,
                lens,
                seeds,
                policy,
                chunk,
                &mut stats,
            );
            telemetry.add(&stats);
        });
    }
}

/// Build one shard covering global vertices `lo..hi`: identify fragment
/// heads (vertices whose global predecessor lies outside the shard),
/// walk each fragment recording its length and exit edge, and chain the
/// fragments into one valid local list.
fn build_shard(list: &LinkedList, lo: usize, hi: usize) -> ShardBuild {
    let links = list.links();
    let len = hi - lo;
    // A vertex with an in-shard predecessor is interior to a fragment;
    // everything else (including the global head, which has no
    // predecessor at all) starts one.
    let mut is_head = vec![true; len];
    for (off, &nx) in links[lo..hi].iter().enumerate() {
        let (v, nx) = (lo + off, nx as usize);
        if nx != v && (lo..hi).contains(&nx) {
            is_head[nx - lo] = false;
        }
    }
    let mut local_next = vec![0 as Idx; len];
    let mut frag_heads = Vec::new();
    let mut frag_lens = Vec::new();
    let mut frag_exits = Vec::new();
    let mut local_head = 0 as Idx;
    let mut prev_tail: Option<usize> = None;
    for lv in (0..len).filter(|&lv| is_head[lv]) {
        if frag_heads.is_empty() {
            local_head = lv as Idx;
        }
        if let Some(pt) = prev_tail {
            local_next[pt] = lv as Idx; // chain the previous fragment here
        }
        let mut cur = lo + lv;
        let mut flen = 1u32;
        let exit = loop {
            let nx = links[cur] as usize;
            if nx == cur {
                break Idx::MAX; // global tail ends this fragment
            }
            if !(lo..hi).contains(&nx) {
                break nx as Idx; // cross-shard edge
            }
            local_next[cur - lo] = (nx - lo) as Idx;
            cur = nx;
            flen += 1;
        };
        frag_heads.push((lo + lv) as Idx);
        frag_lens.push(flen);
        frag_exits.push(exit);
        prev_tail = Some(cur - lo);
    }
    let local_tail = prev_tail.expect("non-empty shard has at least one fragment") as Idx;
    local_next[local_tail as usize] = local_tail;
    ShardBuild {
        local_next,
        local_head,
        local_tail: local_tail as Idx,
        frag_heads,
        frag_lens,
        frag_exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, Layout};

    fn check_parity(list: &LinkedList, shard_size: usize) {
        let sharded = ShardedList::build(list, shard_size);
        assert_eq!(
            sharded.rank(),
            crate::serial::rank(list),
            "n = {}, shard_size = {shard_size}",
            list.len()
        );
    }

    #[test]
    fn parity_across_layouts_and_shard_sizes() {
        for n in [1usize, 2, 3, 7, 64, 65, 1000] {
            for layout in
                [Layout::Sequential, Layout::Reversed, Layout::Random, Layout::Blocked(16)]
            {
                let list = gen::list_with_layout(n, layout, n as u64);
                for shard_size in [1usize, 3, 16, 64, n.max(1), 2 * n.max(1)] {
                    check_parity(&list, shard_size);
                }
            }
        }
    }

    #[test]
    fn sequential_list_contracts_to_one_fragment_per_shard() {
        let list = gen::sequential_list(1000);
        let sharded = ShardedList::build(&list, 128);
        assert_eq!(sharded.shard_count(), 8);
        assert_eq!(sharded.fragment_count(), 8, "one unbroken run per shard");
        let bt = sharded.boundary();
        assert_eq!(bt.head(), 0);
        let prefix = bt.serial_prefix();
        assert_eq!(prefix, (0..8).map(|i| i * 128).collect::<Vec<u64>>());
    }

    #[test]
    fn random_list_is_boundary_heavy() {
        // A random permutation crosses shards almost every step: the
        // contracted list barely contracts. This is the adversarial
        // topology for sharding, and it must still be exact.
        let list = gen::random_list(4096, 9);
        let sharded = ShardedList::build(&list, 512);
        assert!(sharded.fragment_count() > 3000, "{} fragments", sharded.fragment_count());
        check_parity(&list, 512);
    }

    #[test]
    fn boundary_list_is_a_valid_list_and_lens_sum_to_n() {
        for (n, shard) in [(1usize, 1usize), (500, 64), (1000, 1), (317, 100)] {
            let list = gen::random_list(n, 3);
            let sharded = ShardedList::build(&list, shard);
            let contracted = sharded.boundary().to_list();
            assert_eq!(contracted.len(), sharded.fragment_count());
            let total: u64 = sharded.boundary().lens().iter().map(|&l| l as u64).sum();
            assert_eq!(total, n as u64);
        }
    }

    #[test]
    fn external_stitch_prefix_matches_serial_stitch() {
        // Rank the contracted list by scanning lens along it with the
        // generic serial scanner — the path a parallel stitch backend
        // takes — and check the broadcast agrees with the built-in.
        let list = gen::list_with_layout(5000, Layout::Blocked(32), 11);
        let sharded = ShardedList::build(&list, 600);
        let bt = sharded.boundary();
        let contracted = bt.to_list();
        let lens: Vec<i64> = bt.lens().iter().map(|&l| l as i64).collect();
        let scanned = crate::serial::scan(&contracted, &lens, &crate::ops::AddOp);
        let prefix: Vec<u64> = scanned.iter().map(|&x| x as u64).collect();
        assert_eq!(prefix, bt.serial_prefix());
        let mut out = Vec::new();
        sharded.rank_into_with_prefix(&prefix, &mut out);
        assert_eq!(out, crate::serial::rank(&list));
    }

    #[test]
    fn generic_scan_matches_serial_across_layouts() {
        use crate::ops::{AddOp, MaxOp};
        for n in [1usize, 2, 3, 7, 64, 65, 1000] {
            for layout in
                [Layout::Sequential, Layout::Reversed, Layout::Random, Layout::Blocked(16)]
            {
                let list = gen::list_with_layout(n, layout, 3 * n as u64 + 1);
                let values: Vec<i64> = (0..n as i64).map(|i| (i % 17) - 8).collect();
                for shard_size in [1usize, 3, 16, n.max(1), 2 * n.max(1)] {
                    let sharded = ShardedList::build(&list, shard_size);
                    assert_eq!(
                        sharded.scan(&values, &AddOp),
                        crate::serial::scan(&list, &values, &AddOp),
                        "add n = {n}, shard_size = {shard_size}"
                    );
                    assert_eq!(
                        sharded.scan(&values, &MaxOp),
                        crate::serial::scan(&list, &values, &MaxOp),
                        "max n = {n}, shard_size = {shard_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_commutative_scan_respects_list_order() {
        // AffineOp is the ordering trap: any path that swaps operand
        // order (e.g. combining a fragment's total *after* its local
        // prefix) produces wrong results here.
        use crate::ops::{Affine, AffineOp};
        let n = 5000;
        let list = gen::random_list(n, 77);
        let funcs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 5) as i64 - 2, (i % 11) as i64 - 5)).collect();
        let want = crate::serial::scan(&list, &funcs, &AffineOp);
        for shard_size in [1usize, 64, 700, n] {
            let sharded = ShardedList::build(&list, shard_size);
            assert_eq!(sharded.scan(&funcs, &AffineOp), want, "shard_size = {shard_size}");
        }
    }

    #[test]
    fn segmented_op_scans_through_shards() {
        use crate::ops::AddOp;
        use crate::segmented::{self, SegOp};
        let n = 3000;
        let list = gen::list_with_layout(n, Layout::Blocked(32), 13);
        let values: Vec<i64> = (0..n as i64).map(|i| (i % 9) - 4).collect();
        let mut starts = vec![false; n];
        for (pos, v) in list.iter().enumerate() {
            starts[v as usize] = pos % 41 == 0;
        }
        let wrapped = segmented::wrap(&values, &starts);
        let sharded = ShardedList::build(&list, 256);
        let got =
            segmented::unwrap_exclusive(&sharded.scan(&wrapped, &SegOp(AddOp)), &starts, &AddOp);
        assert_eq!(got, segmented::serial_segmented_scan(&list, &values, &starts, &AddOp));
    }

    #[test]
    fn scan_of_ones_equals_rank() {
        use crate::ops::AddOp;
        let list = gen::list_with_layout(2048, Layout::Blocked(64), 5);
        let ones = vec![1i64; 2048];
        let sharded = ShardedList::build(&list, 300);
        let scanned = sharded.scan(&ones, &AddOp);
        let ranks = sharded.rank();
        assert!(scanned.iter().zip(&ranks).all(|(&s, &r)| s as u64 == r));
    }

    #[test]
    fn external_generic_stitch_matches_builtin() {
        // Stitch the generic scan through an external backend path
        // (scan fragment totals along the contracted list) and feed the
        // prefix back — the route `listrank::host::scan_sharded_into`
        // takes.
        use crate::ops::AddOp;
        let list = gen::list_with_layout(4000, Layout::Blocked(50), 21);
        let values: Vec<i64> = (0..4000).map(|i| (i % 13) as i64).collect();
        let sharded = ShardedList::build(&list, 512);
        let totals = sharded.fragment_totals(&values, &AddOp);
        let contracted = sharded.boundary().to_list();
        let prefix = crate::serial::scan(&contracted, &totals, &AddOp);
        assert_eq!(prefix, sharded.boundary().serial_exclusive(&totals, &AddOp));
        let mut out = Vec::new();
        sharded.scan_into_with_prefix(&values, &AddOp, &prefix, &mut out);
        assert_eq!(out, crate::serial::scan(&list, &values, &AddOp));
    }

    /// Boundary-table equality for tests: the public views must agree
    /// row for row (rank parity alone could mask id-space skew).
    fn assert_boundary_eq(a: &ShardedList, b: &ShardedList) {
        assert_eq!(a.boundary().links(), b.boundary().links());
        assert_eq!(a.boundary().lens(), b.boundary().lens());
        assert_eq!(a.boundary().head(), b.boundary().head());
    }

    #[test]
    fn rebuild_dirty_matches_fresh_build_across_edits() {
        use crate::dynamic::{Edit, MutableList};
        for layout in [Layout::Sequential, Layout::Reversed, Layout::Random, Layout::Blocked(16)] {
            let list = gen::list_with_layout(500, layout, 41);
            for shard_size in [7usize, 64, 500, 1000] {
                let base = ShardedList::build(&list, shard_size);
                let mut m = MutableList::from_list(&list);
                let report = m
                    .apply(&[
                        Edit::Splice { first: 13, last: 13, after: Some(400) },
                        Edit::Delete { v: 77 },
                        Edit::Append { count: 9 },
                        Edit::Splice { first: 501, last: 505, after: None },
                    ])
                    .unwrap();
                let mutated = m.snapshot();
                let patched = base.rebuild_dirty(&mutated, &report.dirty_shards(shard_size));
                let fresh = ShardedList::build(&mutated, shard_size);
                assert_boundary_eq(&patched, &fresh);
                assert_eq!(
                    patched.rank(),
                    crate::serial::rank(&mutated),
                    "layout {layout:?}, shard_size {shard_size}"
                );
            }
        }
    }

    #[test]
    fn rebuild_dirty_reuses_clean_shard_memory() {
        use crate::dynamic::{Edit, MutableList};
        let list = gen::sequential_list(1000);
        let base = ShardedList::build(&list, 100);
        let mut m = MutableList::from_list(&list);
        let report = m.apply(&[Edit::Splice { first: 210, last: 215, after: Some(230) }]).unwrap();
        let dirty = report.dirty_shards(100);
        assert_eq!(dirty, vec![2]);
        let patched = base.rebuild_dirty(&m.snapshot(), &dirty);
        for (s, (old, new)) in base.shards.iter().zip(&patched.shards).enumerate() {
            if s == 2 {
                assert!(!Arc::ptr_eq(&old.local, &new.local), "dirty shard must be rebuilt");
            } else {
                assert!(Arc::ptr_eq(&old.local, &new.local), "clean shard {s} must be shared");
            }
        }
        assert_eq!(patched.rank(), crate::serial::rank(&m.snapshot()));
    }

    #[test]
    fn rebuild_dirty_handles_growth_and_shrink() {
        use crate::dynamic::{Edit, MutableList};
        let list = gen::list_with_layout(256, Layout::Blocked(8), 5);
        // Grow past the old grid.
        let base = ShardedList::build(&list, 64);
        let mut m = MutableList::from_list(&list);
        let report = m.apply(&[Edit::Append { count: 200 }]).unwrap();
        let patched = base.rebuild_dirty(&m.snapshot(), &report.dirty_shards(64));
        assert_eq!(patched.shard_count(), 456usize.div_ceil(64));
        assert_eq!(patched.rank(), crate::serial::rank(&m.snapshot()));
        // Shrink below a shard boundary.
        let mut m = MutableList::from_list(&list);
        let mut report = m.apply(&[Edit::Delete { v: 0 }]).unwrap();
        for _ in 0..70 {
            let last = report.new_len;
            let step = m.apply(&[Edit::Delete { v: (last - 1) as Idx / 2 }]).unwrap();
            report.merge(&step);
        }
        let patched = base.rebuild_dirty(&m.snapshot(), &report.dirty_shards(64));
        let fresh = ShardedList::build(&m.snapshot(), 64);
        assert_boundary_eq(&patched, &fresh);
        assert_eq!(patched.rank(), crate::serial::rank(&m.snapshot()));
    }

    #[test]
    fn rebuild_dirty_scan_parity() {
        use crate::dynamic::{Edit, MutableList};
        use crate::ops::{Affine, AffineOp};
        let list = gen::random_list(300, 23);
        let base = ShardedList::build(&list, 32);
        let mut m = MutableList::from_list(&list);
        let report = m
            .apply(&[Edit::Splice { first: 5, last: 5, after: None }, Edit::Delete { v: 100 }])
            .unwrap();
        let mutated = m.snapshot();
        let patched = base.rebuild_dirty(&mutated, &report.dirty_shards(32));
        let funcs: Vec<Affine> =
            (0..mutated.len()).map(|i| Affine::new((i % 3) as i64 - 1, i as i64 % 7)).collect();
        assert_eq!(
            patched.scan(&funcs, &AffineOp),
            crate::serial::scan(&mutated, &funcs, &AffineOp)
        );
    }

    #[test]
    #[should_panic(expected = "not marked dirty")]
    fn rebuild_dirty_rejects_unmarked_resize() {
        let list = gen::sequential_list(100);
        let base = ShardedList::build(&list, 10);
        let shrunk = gen::sequential_list(95);
        // Shard 9 shrank from 10 vertices to 5 but is not marked.
        let _ = base.rebuild_dirty(&shrunk, &[]);
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn zero_shard_size_rejected() {
        let list = gen::sequential_list(10);
        let _ = ShardedList::build(&list, 0);
    }

    #[test]
    #[should_panic(expected = "stitch prefix length")]
    fn wrong_prefix_length_rejected() {
        let list = gen::sequential_list(100);
        let sharded = ShardedList::build(&list, 10);
        let mut out = Vec::new();
        sharded.rank_into_with_prefix(&[0], &mut out);
    }
}
