//! Structural validation of link arrays.
//!
//! List ranking on a malformed list (a rho-shaped cycle, several tails,
//! unreachable vertices) would either loop forever or silently produce
//! garbage; the paper assumes well-formed input, so we enforce it at the
//! API boundary instead of inside the hot loops.

use crate::list::Idx;

/// Why a link array is not a valid linked list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListError {
    /// Lists must have at least one vertex.
    Empty,
    /// The head index is not a vertex.
    HeadOutOfRange {
        /// Offending head index.
        head: Idx,
        /// Number of vertices.
        len: usize,
    },
    /// A link points outside `0..n`.
    LinkOutOfRange {
        /// Vertex holding the bad link.
        at: Idx,
        /// The out-of-range target.
        to: Idx,
        /// Number of vertices.
        len: usize,
    },
    /// No vertex has a self-loop, so the walk from the head never ends
    /// (the structure contains a cycle).
    NoTail,
    /// More than one vertex has a self-loop.
    MultipleTails {
        /// The first two self-loop vertices found.
        first: Idx,
        /// Second self-loop vertex.
        second: Idx,
    },
    /// The walk from the head reaches the tail before visiting every
    /// vertex: some vertices are unreachable (e.g. they form a separate
    /// cycle or a side chain).
    Unreachable {
        /// How many vertices the walk covered.
        visited: usize,
        /// Number of vertices.
        len: usize,
    },
    /// The walk from the head revisits a vertex before reaching a tail
    /// (rho-shaped structure).
    CycleDetected {
        /// The vertex at which the walk exceeded `n` steps.
        at: Idx,
    },
    /// `from_order` input was not a permutation of `0..n`.
    NotAPermutation,
    /// Value array length differs from the list length.
    ValueLengthMismatch {
        /// List length.
        list: usize,
        /// Value array length.
        values: usize,
    },
}

impl std::fmt::Display for ListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListError::Empty => write!(f, "list must have at least one vertex"),
            ListError::HeadOutOfRange { head, len } => {
                write!(f, "head index {head} out of range for {len} vertices")
            }
            ListError::LinkOutOfRange { at, to, len } => {
                write!(f, "link at vertex {at} points to {to}, out of range for {len} vertices")
            }
            ListError::NoTail => write!(f, "no tail self-loop: the links contain a cycle"),
            ListError::MultipleTails { first, second } => {
                write!(f, "multiple tail self-loops (vertices {first} and {second})")
            }
            ListError::Unreachable { visited, len } => {
                write!(f, "only {visited} of {len} vertices reachable from the head")
            }
            ListError::CycleDetected { at } => {
                write!(f, "walk from head revisits vertex {at}: rho-shaped cycle")
            }
            ListError::NotAPermutation => {
                write!(f, "order is not a permutation of 0..n")
            }
            ListError::ValueLengthMismatch { list, values } => {
                write!(f, "value array length {values} does not match list length {list}")
            }
        }
    }
}

impl std::error::Error for ListError {}

/// Facts established by validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListTopology {
    /// The unique tail (self-loop) vertex.
    pub tail: Idx,
}

/// Validate a link array in `O(n)` time and `O(1)` extra space.
///
/// Checks, in order: non-emptiness, head range, link ranges, tail
/// uniqueness, and full reachability of all `n` vertices from `head`
/// (which also rules out rho-shaped cycles: a walk of `n-1` steps from the
/// head must land exactly on the tail).
pub fn validate_links(next: &[Idx], head: Idx) -> Result<ListTopology, ListError> {
    let n = next.len();
    if n == 0 {
        return Err(ListError::Empty);
    }
    if head as usize >= n {
        return Err(ListError::HeadOutOfRange { head, len: n });
    }
    let mut tail: Option<Idx> = None;
    for (v, &to) in next.iter().enumerate() {
        if to as usize >= n {
            return Err(ListError::LinkOutOfRange { at: v as Idx, to, len: n });
        }
        if to as usize == v {
            match tail {
                None => tail = Some(v as Idx),
                Some(first) => return Err(ListError::MultipleTails { first, second: v as Idx }),
            }
        }
    }
    let tail = tail.ok_or(ListError::NoTail)?;
    // Walk n-1 steps from the head; a single simple path covering all
    // vertices ends exactly at the tail. Any earlier arrival at the tail
    // means unreachable vertices; never arriving means a rho shape, but a
    // rho requires a second cycle, which the unique-self-loop check above
    // already restricts to "side components", caught here as well.
    let mut cur = head;
    for step in 0..n - 1 {
        if cur == tail {
            return Err(ListError::Unreachable { visited: step + 1, len: n });
        }
        cur = next[cur as usize];
    }
    if cur != tail {
        return Err(ListError::CycleDetected { at: cur });
    }
    Ok(ListTopology { tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_lists() {
        assert_eq!(validate_links(&[1, 2, 2], 0).unwrap().tail, 2);
        assert_eq!(validate_links(&[0], 0).unwrap().tail, 0);
        // 2 -> 0 -> 1 (tail)
        assert_eq!(validate_links(&[1, 1, 0], 2).unwrap().tail, 1);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(validate_links(&[], 0), Err(ListError::Empty));
    }

    #[test]
    fn rejects_bad_head() {
        assert_eq!(validate_links(&[0], 3), Err(ListError::HeadOutOfRange { head: 3, len: 1 }));
    }

    #[test]
    fn rejects_out_of_range_link() {
        assert_eq!(
            validate_links(&[1, 7, 2], 0),
            Err(ListError::LinkOutOfRange { at: 1, to: 7, len: 3 })
        );
    }

    #[test]
    fn rejects_pure_cycle() {
        assert_eq!(validate_links(&[1, 2, 0], 0), Err(ListError::NoTail));
    }

    #[test]
    fn rejects_two_tails() {
        // 0 -> 0 and 1 -> 1: two components
        assert_eq!(
            validate_links(&[0, 1], 0),
            Err(ListError::MultipleTails { first: 0, second: 1 })
        );
    }

    #[test]
    fn rejects_unreachable_component() {
        // 0 -> 1 (tail); 2 -> 3 -> 2 is a separate cycle.
        assert_eq!(
            validate_links(&[1, 1, 3, 2], 0),
            Err(ListError::Unreachable { visited: 2, len: 4 })
        );
    }

    #[test]
    fn rejects_early_tail() {
        // head *is* the tail but there are other vertices behind it.
        assert_eq!(
            validate_links(&[0, 0, 1], 0),
            Err(ListError::Unreachable { visited: 1, len: 3 })
        );
        // single tail, but head lands on it too early: 0 -> 2(tail), 1 -> 2.
        assert_eq!(
            validate_links(&[2, 2, 2], 0),
            Err(ListError::Unreachable { visited: 2, len: 3 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = validate_links(&[1, 7, 2], 0).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("vertex 1"));
        assert!(msg.contains('7'));
    }
}
