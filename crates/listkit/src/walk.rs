//! K-lane interleaved traversal: memory-level parallelism for
//! pointer-chasing hot paths.
//!
//! Reid-Miller's C-90 speedup comes from traversing many independent
//! sublists *simultaneously* so the vector pipeline always has a memory
//! operation in flight. The modern analogue on a scalar multicore is
//! **memory-level parallelism**: a single cursor chasing `next[cur]`
//! stalls on one DRAM load per step (~80–100 ns on a miss), while `K`
//! interleaved cursors over independent chains keep `K` misses in
//! flight and amortize the latency to roughly `miss / K`. This module
//! is that engine, shared by every multi-chain hot path in the
//! workspace:
//!
//! * Reid-Miller Phase 1 (sublist reduce) and Phase 3 (prefix expand) —
//!   the *boundary-terminated* walks ([`reduce_chains`],
//!   [`expand_chains`] and their rank specializations);
//! * the shard-local fragment walks of [`crate::sharded`] — the
//!   *length-terminated* walks ([`reduce_runs`], [`expand_runs`],
//!   [`expand_rank_runs`]);
//! * the Phase-0 head gather ([`gather_links`]).
//!
//! Interleaving never changes the order in which any single chain is
//! visited, so every result is **byte-identical** to the one-cursor
//! walk for any operator, commutative or not, at any lane count.
//!
//! ## Safety
//!
//! The hot loops use unchecked indexing. This is sound because every
//! entry point takes a [`LinkedList`], whose construction validates
//! `links[v] < n` for all `v` (and `LinkedList::from_raw_trusted`
//! debug-asserts the same), and because each wrapper asserts up front
//! that chain heads, value arrays and the boundary bitset cover the
//! list. A `debug_assert!` shadows every unchecked access, so debug
//! builds (and the test suite) still bounds-check every step.

#![allow(unsafe_code)]

use crate::list::{Idx, LinkedList};
use crate::ops::ScanOp;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default lane count. Modern cores sustain ~10–12 outstanding L1
/// misses (fill-buffer limit); 8 lanes captures most of that headroom
/// while keeping the lane state comfortably in registers/L1. Keep in
/// sync with `rankmodel::predict::DEFAULT_LANES`, the cost model's
/// mirror of this constant (neither crate depends on the other, so it
/// cannot be imported; a workspace test pins the two together).
pub const DEFAULT_LANES: usize = 8;

/// Hard cap on the lane count: beyond the miss-buffer depth extra lanes
/// only add refill bookkeeping.
pub const MAX_LANES: usize = 64;

/// Distance (in elements) the [`gather_links`] pass prefetches ahead.
const GATHER_PREFETCH_DIST: usize = 16;

/// Issue a best-effort prefetch of `slice[i]` into all cache levels.
/// A no-op on architectures without an exposed prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < slice.len() {
        // SAFETY: `i` is in bounds; prefetch has no observable effect
        // beyond cache state and is safe on any mapped address anyway.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(i) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, i);
    }
}

/// How a walk interleaves: lane count and whether to issue software
/// prefetches for the next step's loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkPolicy {
    /// Cursors kept in flight per worker (clamped to `1..=`[`MAX_LANES`]).
    pub lanes: usize,
    /// Software-prefetch `links`/values/boundary for each lane's next
    /// vertex as soon as it is known.
    pub prefetch: bool,
}

impl Default for WalkPolicy {
    fn default() -> Self {
        WalkPolicy { lanes: DEFAULT_LANES, prefetch: true }
    }
}

impl WalkPolicy {
    /// A policy with the given lane count and prefetch enabled.
    pub fn with_lanes(lanes: usize) -> Self {
        WalkPolicy { lanes, ..Self::default() }
    }

    /// The clamped lane count actually used.
    #[inline]
    pub fn effective_lanes(&self) -> usize {
        self.lanes.clamp(1, MAX_LANES)
    }
}

/// Per-walk occupancy telemetry: `steps` vertices were visited across
/// `slots` lane-slots (sweeps × lane count). `steps / slots` is the
/// fraction of lane capacity that held a live cursor — low occupancy
/// means chains ran dry faster than refill could feed them (e.g. many
/// fewer chains than lanes, or a drain-out tail after one skewed chain).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Vertices visited.
    pub steps: u64,
    /// Lane-slots available while the walk ran.
    pub slots: u64,
}

impl LaneStats {
    /// Fraction of lane-slots that performed a visit (`0.0` when the
    /// walk never ran).
    pub fn occupancy(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.steps as f64 / self.slots as f64
        }
    }

    /// Fold another walk's stats into this one.
    pub fn merge(&mut self, other: &LaneStats) {
        self.steps += other.steps;
        self.slots += other.slots;
    }
}

/// Shared accumulator for [`LaneStats`] from concurrent walkers
/// (rayon tasks add their local stats; readers snapshot).
#[derive(Debug, Default)]
pub struct LaneTelemetry {
    steps: AtomicU64,
    slots: AtomicU64,
}

impl LaneTelemetry {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one walker's stats in (relaxed; counters are advisory).
    pub fn add(&self, stats: &LaneStats) {
        self.steps.fetch_add(stats.steps, Ordering::Relaxed);
        self.slots.fetch_add(stats.slots, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> LaneStats {
        LaneStats {
            steps: self.steps.load(Ordering::Relaxed),
            slots: self.slots.load(Ordering::Relaxed),
        }
    }

    /// Zero the totals (start of a new measured region).
    pub fn reset(&self) {
        self.steps.store(0, Ordering::Relaxed);
        self.slots.store(0, Ordering::Relaxed);
    }
}

/// A packed `u64` bitset over vertex indices — the boundary bitmap of
/// Reid-Miller Phase 0/1/3 at 1/8th the memory traffic of a
/// `Vec<bool>` (for a 2²³-vertex list the bitmap is 1 MiB and sits in
/// L2 instead of 8 MiB thrashing L3).
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset addresses zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reserve capacity for at least `bits` bits.
    pub fn reserve(&mut self, bits: usize) {
        self.words.reserve(bits.div_ceil(64));
    }

    /// Bits this set can address without reallocating.
    pub fn capacity(&self) -> usize {
        self.words.capacity() * 64
    }

    /// Resize to exactly `bits` bits, all cleared. Reuses the backing
    /// allocation when capacity suffices (the scratch-pool contract).
    pub fn reset(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = bits;
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Read bit `i` without bounds checking.
    ///
    /// # Safety
    /// `i < self.len()` must hold.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        // SAFETY: i < len ⇒ i/64 < words.len() (len bits fit in words).
        (unsafe { *self.words.get_unchecked(i >> 6) } >> (i & 63)) & 1 != 0
    }

    /// Prefetch the word holding bit `i`.
    #[inline(always)]
    fn prefetch(&self, i: usize) {
        prefetch_read(&self.words, i >> 6);
    }

    /// Heap footprint of the backing storage, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Chunk length for splitting `chains` chains across `workers` workers
/// while keeping each chunk ≥ 4·`lanes` chains, so every walker has
/// enough independent chains to refill its lanes and the scheduler has
/// a few chunks per worker to balance skewed chain lengths.
pub fn chunk_len(chains: usize, workers: usize, lanes: usize) -> usize {
    let lanes = lanes.clamp(1, MAX_LANES);
    let target_chunks = workers.max(1) * 4;
    chains.div_ceil(target_chunks).max(4 * lanes).max(1)
}

/// One in-flight cursor of a boundary-terminated walk.
struct Lane<S> {
    chain: u32,
    cur: Idx,
    state: S,
}

/// The boundary-terminated K-lane driver: each chain starts at
/// `heads[i]` and ends at the first vertex whose `boundary` bit is set
/// (inclusive — that vertex is still visited). Lanes refill from the
/// next unstarted chain the moment one finishes.
#[allow(clippy::too_many_arguments)]
fn drive_chains<S>(
    list: &LinkedList,
    heads: &[Idx],
    boundary: &BitSet,
    policy: WalkPolicy,
    stats: &mut LaneStats,
    mut init: impl FnMut(usize) -> S,
    mut visit: impl FnMut(&mut S, usize),
    mut finish: impl FnMut(usize, S, Idx),
    prefetch_value: impl Fn(usize),
) {
    let n = list.len();
    let links = list.links();
    assert_eq!(boundary.len(), n, "boundary bitset must cover the list");
    for &h in heads {
        assert!((h as usize) < n, "chain head {h} out of bounds for {n} vertices");
    }
    let k = policy.effective_lanes();
    let mut lanes: Vec<Lane<S>> = Vec::with_capacity(k.min(heads.len()));
    let mut next = 0usize;
    while next < heads.len() && lanes.len() < k {
        lanes.push(Lane { chain: next as u32, cur: heads[next], state: init(next) });
        next += 1;
    }
    let (mut steps, mut sweeps) = (0u64, 0u64);
    while !lanes.is_empty() {
        sweeps += 1;
        let mut l = 0;
        while l < lanes.len() {
            let cur = lanes[l].cur as usize;
            debug_assert!(cur < n);
            visit(&mut lanes[l].state, cur);
            steps += 1;
            // SAFETY: cur < n == boundary.len() (heads asserted above;
            // successors stay < n by the LinkedList link invariant).
            if unsafe { boundary.get_unchecked(cur) } {
                let done = if next < heads.len() {
                    let fresh = Lane { chain: next as u32, cur: heads[next], state: init(next) };
                    next += 1;
                    l += 1;
                    std::mem::replace(&mut lanes[l - 1], fresh)
                } else {
                    // No refill left: retire the lane; the swapped-in
                    // lane takes slot `l` and runs this sweep.
                    lanes.swap_remove(l)
                };
                finish(done.chain as usize, done.state, cur as Idx);
            } else {
                // SAFETY: cur < n; construction validated links[cur] < n.
                let nx = unsafe { *links.get_unchecked(cur) };
                debug_assert!((nx as usize) < n, "validated list keeps links in bounds");
                lanes[l].cur = nx;
                if policy.prefetch {
                    prefetch_read(links, nx as usize);
                    boundary.prefetch(nx as usize);
                    prefetch_value(nx as usize);
                }
                l += 1;
            }
        }
    }
    stats.steps += steps;
    stats.slots += sweeps * k as u64;
}

/// One in-flight cursor of a length-terminated walk.
struct RunLane<S> {
    run: u32,
    cur: Idx,
    left: u32,
    state: S,
}

/// The length-terminated K-lane driver: run `i` starts at `heads[i]`
/// and visits exactly `lens[i]` vertices. Zero-length runs are finished
/// immediately without visiting anything. Used for the shard-local
/// fragment walks, where fragment lengths are known from the build.
#[allow(clippy::too_many_arguments)]
fn drive_runs<S>(
    local: &LinkedList,
    heads: &[Idx],
    lens: &[u32],
    policy: WalkPolicy,
    stats: &mut LaneStats,
    mut init: impl FnMut(usize) -> S,
    mut visit: impl FnMut(&mut S, usize),
    mut finish: impl FnMut(usize, S),
    prefetch_value: impl Fn(usize),
) {
    let n = local.len();
    let links = local.links();
    assert_eq!(heads.len(), lens.len(), "one length per run");
    for &h in heads {
        assert!((h as usize) < n, "run head {h} out of bounds for {n} vertices");
    }
    let k = policy.effective_lanes();
    let mut lanes: Vec<RunLane<S>> = Vec::with_capacity(k.min(heads.len()));
    let mut next = 0usize;
    // Produce the next *live* run, finishing zero-length runs on the
    // way; shared by the initial fill and mid-walk refill.
    let next_live = |next: &mut usize,
                     init: &mut dyn FnMut(usize) -> S,
                     finish: &mut dyn FnMut(usize, S)|
     -> Option<RunLane<S>> {
        while *next < heads.len() {
            let i = *next;
            *next += 1;
            if lens[i] == 0 {
                finish(i, init(i));
                continue;
            }
            return Some(RunLane { run: i as u32, cur: heads[i], left: lens[i], state: init(i) });
        }
        None
    };
    while lanes.len() < k {
        match next_live(&mut next, &mut init, &mut finish) {
            Some(lane) => lanes.push(lane),
            None => break,
        }
    }
    let (mut steps, mut sweeps) = (0u64, 0u64);
    while !lanes.is_empty() {
        sweeps += 1;
        let mut l = 0;
        while l < lanes.len() {
            let cur = lanes[l].cur as usize;
            debug_assert!(cur < n);
            visit(&mut lanes[l].state, cur);
            steps += 1;
            lanes[l].left -= 1;
            if lanes[l].left == 0 {
                // Refill in place like `drive_chains`: the fresh run
                // waits for the next sweep (advancing `l` past it), so
                // a sweep never visits more than its starting lane
                // count and occupancy stays ≤ 1 even when every run is
                // a singleton.
                let done = match next_live(&mut next, &mut init, &mut finish) {
                    Some(fresh) => {
                        l += 1;
                        std::mem::replace(&mut lanes[l - 1], fresh)
                    }
                    // No refill left: retire the lane; the swapped-in
                    // lane takes slot `l` and runs this sweep.
                    None => lanes.swap_remove(l),
                };
                finish(done.run as usize, done.state);
            } else {
                // SAFETY: cur < n; construction validated links[cur] < n.
                let nx = unsafe { *links.get_unchecked(cur) };
                debug_assert!((nx as usize) < n, "validated list keeps links in bounds");
                lanes[l].cur = nx;
                if policy.prefetch {
                    prefetch_read(links, nx as usize);
                    prefetch_value(nx as usize);
                }
                l += 1;
            }
        }
    }
    stats.steps += steps;
    stats.slots += sweeps * k as u64;
}

/// Phase-1 reduce: for each chain starting at `heads[i]`, combine the
/// values of its vertices in chain order until (and including) the
/// first boundary vertex. `out[i]` receives `(operator sum, terminal
/// vertex)`. Byte-identical to a one-cursor walk for any lane count.
#[allow(clippy::too_many_arguments)]
pub fn reduce_chains<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    boundary: &BitSet,
    policy: WalkPolicy,
    out: &mut [(T, Idx)],
    stats: &mut LaneStats,
) where
    T: Copy,
    Op: ScanOp<T>,
{
    assert_eq!(values.len(), list.len(), "value array length mismatch");
    assert_eq!(out.len(), heads.len(), "one output slot per chain");
    drive_chains(
        list,
        heads,
        boundary,
        policy,
        stats,
        |_| op.identity(),
        // SAFETY: the driver only passes v < list.len() == values.len().
        |acc, v| *acc = op.combine(*acc, unsafe { *values.get_unchecked(v) }),
        |i, acc, term| out[i] = (acc, term),
        |v| prefetch_read(values, v),
    );
}

/// Phase-1 reduce specialized to ranking: `out[i]` = (chain length,
/// terminal vertex). No value array is touched.
pub fn count_chains(
    list: &LinkedList,
    heads: &[Idx],
    boundary: &BitSet,
    policy: WalkPolicy,
    out: &mut [(u64, Idx)],
    stats: &mut LaneStats,
) {
    assert_eq!(out.len(), heads.len(), "one output slot per chain");
    drive_chains(
        list,
        heads,
        boundary,
        policy,
        stats,
        |_| 0u64,
        |len, _| *len += 1,
        |i, len, term| out[i] = (len, term),
        |_| {},
    );
}

/// Phase-3 expand: chain `i` starts at `heads[i]` with prefix
/// `seeds[i]`; every visited vertex `v` gets `write(v, prefix-so-far)`
/// and the prefix is extended by `values[v]`, until (and including) the
/// boundary vertex. `write` receives each vertex exactly once across
/// all chains (chains partition their vertices by construction).
#[allow(clippy::too_many_arguments)]
pub fn expand_chains<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    seeds: &[T],
    boundary: &BitSet,
    policy: WalkPolicy,
    mut write: impl FnMut(usize, T),
    stats: &mut LaneStats,
) where
    T: Copy,
    Op: ScanOp<T>,
{
    assert_eq!(values.len(), list.len(), "value array length mismatch");
    assert_eq!(seeds.len(), heads.len(), "one seed per chain");
    drive_chains(
        list,
        heads,
        boundary,
        policy,
        stats,
        |i| seeds[i],
        |acc, v| {
            write(v, *acc);
            // SAFETY: the driver only passes v < list.len() == values.len().
            *acc = op.combine(*acc, unsafe { *values.get_unchecked(v) });
        },
        |_, _, _| {},
        |v| prefetch_read(values, v),
    );
}

/// Phase-3 expand specialized to ranking: chain `i` starts at rank
/// `seeds[i]`; each visited vertex gets `write(v, rank)` with the rank
/// incrementing along the chain.
pub fn expand_rank_chains(
    list: &LinkedList,
    heads: &[Idx],
    seeds: &[u64],
    boundary: &BitSet,
    policy: WalkPolicy,
    mut write: impl FnMut(usize, u64),
    stats: &mut LaneStats,
) {
    assert_eq!(seeds.len(), heads.len(), "one seed per chain");
    drive_chains(
        list,
        heads,
        boundary,
        policy,
        stats,
        |i| seeds[i],
        |r, v| {
            write(v, *r);
            *r += 1;
        },
        |_, _, _| {},
        |_| {},
    );
}

/// Length-terminated reduce: run `i` combines the values of
/// `lens[i]` vertices starting at `heads[i]` (local coordinates) into
/// `out[i]`. A zero-length run yields the identity.
#[allow(clippy::too_many_arguments)]
pub fn reduce_runs<T, Op>(
    local: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    lens: &[u32],
    policy: WalkPolicy,
    out: &mut [T],
    stats: &mut LaneStats,
) where
    T: Copy,
    Op: ScanOp<T>,
{
    assert_eq!(values.len(), local.len(), "value array length mismatch");
    assert_eq!(out.len(), heads.len(), "one output slot per run");
    drive_runs(
        local,
        heads,
        lens,
        policy,
        stats,
        |_| op.identity(),
        // SAFETY: the driver only passes v < local.len() == values.len().
        |acc, v| *acc = op.combine(*acc, unsafe { *values.get_unchecked(v) }),
        |i, acc| out[i] = acc,
        |v| prefetch_read(values, v),
    );
}

/// Length-terminated expand: run `i` starts at `heads[i]` with prefix
/// `seeds[i]`; each visited local vertex `v` gets
/// `out[v] = prefix-so-far`, extended by `values[v]`. `out` is indexed
/// by local vertex and must cover the local list; runs partition their
/// vertices, so each slot is written at most once.
#[allow(clippy::too_many_arguments)]
pub fn expand_runs<T, Op>(
    local: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    lens: &[u32],
    seeds: &[T],
    policy: WalkPolicy,
    out: &mut [T],
    stats: &mut LaneStats,
) where
    T: Copy,
    Op: ScanOp<T>,
{
    assert_eq!(values.len(), local.len(), "value array length mismatch");
    assert_eq!(out.len(), local.len(), "output is indexed by local vertex");
    assert_eq!(seeds.len(), heads.len(), "one seed per run");
    let out_ptr = out;
    drive_runs(
        local,
        heads,
        lens,
        policy,
        stats,
        |i| seeds[i],
        |acc, v| {
            // SAFETY: v < local.len() == out.len() == values.len().
            unsafe {
                *out_ptr.get_unchecked_mut(v) = *acc;
                *acc = op.combine(*acc, *values.get_unchecked(v));
            }
        },
        |_, _| {},
        |v| prefetch_read(values, v),
    );
}

/// Length-terminated rank expand: run `i` starts at rank `seeds[i]`;
/// each visited local vertex `v` gets `out[v] = rank`, incrementing
/// along the run. The shard-local half of sharded ranking.
#[allow(clippy::too_many_arguments)]
pub fn expand_rank_runs(
    local: &LinkedList,
    heads: &[Idx],
    lens: &[u32],
    seeds: &[u64],
    policy: WalkPolicy,
    out: &mut [u64],
    stats: &mut LaneStats,
) {
    assert_eq!(out.len(), local.len(), "output is indexed by local vertex");
    assert_eq!(seeds.len(), heads.len(), "one seed per run");
    let out_ptr = out;
    drive_runs(
        local,
        heads,
        lens,
        policy,
        stats,
        |i| seeds[i],
        |r, v| {
            // SAFETY: v < local.len() == out.len().
            unsafe { *out_ptr.get_unchecked_mut(v) = *r };
            *r += 1;
        },
        |_, _| {},
        |_| {},
    );
}

/// Batched link gather with look-ahead prefetch: appends
/// `links[at[i]]` for each position to `out`. The Phase-0
/// boundary-splitting pass uses this to turn split vertices into
/// sublist heads — a pure random gather whose loads are all
/// independent, so prefetching `GATHER_PREFETCH_DIST` (16) positions
/// ahead keeps them in flight.
pub fn gather_links(list: &LinkedList, at: &[Idx], policy: WalkPolicy, out: &mut Vec<Idx>) {
    let links = list.links();
    out.reserve(at.len());
    for (i, &v) in at.iter().enumerate() {
        if policy.prefetch {
            if let Some(&ahead) = at.get(i + GATHER_PREFETCH_DIST) {
                prefetch_read(links, ahead as usize);
            }
        }
        out.push(links[v as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ops::AddOp;

    #[test]
    fn bitset_set_get_reset() {
        let mut b = BitSet::new();
        b.reset(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        b.reset(10);
        assert!(!b.get(0), "reset clears previous bits");
        assert_eq!(b.len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitset_bounds_checked() {
        let mut b = BitSet::new();
        b.reset(8);
        let _ = b.get(8);
    }

    #[test]
    fn chunk_len_keeps_lanes_fed() {
        assert!(chunk_len(10_000, 4, 8) >= 32);
        assert_eq!(chunk_len(5, 4, 8), 32);
        assert!(chunk_len(0, 1, 1) >= 1);
        // Many chains on few workers: over-decomposed ~4× per worker.
        let c = chunk_len(64_000, 2, 8);
        assert!(64_000usize.div_ceil(c) <= 8 + 1);
    }

    #[test]
    fn occupancy_full_on_balanced_chains() {
        // 8 chains of equal length on 8 lanes: every sweep is full.
        let list = gen::sequential_list(64);
        let mut boundary = BitSet::new();
        boundary.reset(64);
        let heads: Vec<Idx> = (0..8).map(|i| i * 8).collect();
        for i in 0..8 {
            boundary.set((i * 8 + 7) as usize);
        }
        let mut out = vec![(0u64, 0 as Idx); 8];
        let mut stats = LaneStats::default();
        count_chains(&list, &heads, &boundary, WalkPolicy::with_lanes(8), &mut out, &mut stats);
        assert_eq!(stats.steps, 64);
        assert!((stats.occupancy() - 1.0).abs() < 1e-9, "{stats:?}");
        for &(len, _) in &out {
            assert_eq!(len, 8);
        }
    }

    #[test]
    fn gather_links_matches_plain_index() {
        let list = gen::random_list(500, 3);
        let at: Vec<Idx> = (0..500).step_by(7).map(|v| v as Idx).collect();
        let mut out = Vec::new();
        gather_links(&list, &at, WalkPolicy::default(), &mut out);
        let want: Vec<Idx> = at.iter().map(|&v| list.links()[v as usize]).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn reduce_and_expand_agree_with_single_lane() {
        // Multi-lane vs single-lane on the same random chains must be
        // byte-identical (the deeper zoo lives in tests/walk.rs).
        let list = gen::random_list(1000, 11);
        let mut boundary = BitSet::new();
        boundary.reset(1000);
        boundary.set(list.tail() as usize);
        let mut heads = vec![list.head()];
        for (pos, v) in list.iter().enumerate() {
            if pos % 37 == 36 && !list.is_tail(v) {
                boundary.set(v as usize);
                heads.push(list.next_of(v));
            }
        }
        let values: Vec<i64> = (0..1000).map(|i| (i % 13) - 6).collect();
        let run = |lanes: usize| {
            let mut sums = vec![(0i64, 0 as Idx); heads.len()];
            let mut stats = LaneStats::default();
            reduce_chains(
                &list,
                &values,
                &AddOp,
                &heads,
                &boundary,
                WalkPolicy::with_lanes(lanes),
                &mut sums,
                &mut stats,
            );
            let mut out = vec![0i64; 1000];
            let seeds: Vec<i64> = sums.iter().map(|&(s, _)| s).collect();
            expand_chains(
                &list,
                &values,
                &AddOp,
                &heads,
                &seeds,
                &boundary,
                WalkPolicy::with_lanes(lanes),
                |v, x| out[v] = x,
                &mut stats,
            );
            (sums, out)
        };
        let one = run(1);
        for lanes in [2usize, 3, 8, 16, 64] {
            assert_eq!(run(lanes), one, "lanes = {lanes}");
        }
    }
}
