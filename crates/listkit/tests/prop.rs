//! Property-based tests for the list substrate.

use listkit::gen::{self, Layout};
use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, ScanOp, XorOp};
use listkit::packed::{self, PackedList};
use listkit::segmented::{self, SegOp};
use listkit::validate::validate_links;
use listkit::{Idx, LinkedList};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_layout_generates_valid_lists(
        n in 1usize..3000,
        seed in any::<u64>(),
        layout_ix in 0usize..4,
    ) {
        let layout = match layout_ix {
            0 => Layout::Sequential,
            1 => Layout::Reversed,
            2 => Layout::Blocked(17),
            _ => Layout::Random,
        };
        let list = gen::list_with_layout(n, layout, seed);
        prop_assert!(validate_links(list.links(), list.head()).is_ok());
        // The traversal order is a permutation.
        let mut order = list.order();
        order.sort_unstable();
        prop_assert!(order.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn from_order_inverts_order(n in 1usize..2000, seed in any::<u64>()) {
        let list = gen::random_list(n, seed);
        let order = list.order();
        let rebuilt = LinkedList::from_order(&order).unwrap();
        prop_assert_eq!(rebuilt, list);
    }

    #[test]
    fn predecessors_invert_successors(n in 1usize..2000, seed in any::<u64>()) {
        let list = gen::random_list(n, seed);
        let prev = list.predecessors();
        for v in 0..n as Idx {
            if !list.is_tail(v) {
                prop_assert_eq!(prev[list.next_of(v) as usize], v);
            }
        }
        prop_assert_eq!(prev[list.head() as usize], list.head());
    }

    #[test]
    fn packed_roundtrip(value in any::<u32>(), link in any::<u32>()) {
        let w = packed::pack(value, link);
        prop_assert_eq!(packed::value_of(w), value);
        prop_assert_eq!(packed::link_of(w), link);
    }

    #[test]
    fn packed_rank_equals_serial(n in 1usize..2000, seed in any::<u64>()) {
        let list = gen::random_list(n, seed);
        let packed = PackedList::for_ranking(&list);
        let pr = packed.serial_rank();
        let sr = listkit::serial::rank(&list);
        prop_assert!(pr.iter().zip(&sr).all(|(&p, &s)| p as u64 == s));
    }

    #[test]
    fn affine_op_is_associative(
        a in (-5i64..6, -20i64..20),
        b in (-5i64..6, -20i64..20),
        c in (-5i64..6, -20i64..20),
    ) {
        let (fa, fb, fc) = (
            Affine::new(a.0, a.1),
            Affine::new(b.0, b.1),
            Affine::new(c.0, c.1),
        );
        prop_assert_eq!(
            AffineOp.combine(fa, AffineOp.combine(fb, fc)),
            AffineOp.combine(AffineOp.combine(fa, fb), fc)
        );
    }

    #[test]
    fn affine_composition_is_application(
        a in (-5i64..6, -20i64..20),
        b in (-5i64..6, -20i64..20),
        x in -1000i64..1000,
    ) {
        let (f, g) = (Affine::new(a.0, a.1), Affine::new(b.0, b.1));
        prop_assert_eq!(AffineOp.combine(f, g).apply(x), g.apply(f.apply(x)));
    }

    #[test]
    fn xor_scan_is_self_inverting(n in 1usize..1500, seed in any::<u64>()) {
        // inclusive[i] ^ exclusive[i] == value[i]; the no-alloc entry's
        // returned carry is the whole-list total.
        let list = gen::random_list(n, seed);
        let vals: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let ex = listkit::serial::scan(&list, &vals, &XorOp);
        let mut inc = Vec::new();
        let carry = listkit::serial::scan_inclusive_into(&list, &vals, &XorOp, &mut inc);
        prop_assert_eq!(carry, listkit::serial::total(&list, &vals, &XorOp));
        prop_assert_eq!(inc[list.tail() as usize], carry);
        for v in 0..n {
            prop_assert_eq!(ex[v] ^ inc[v], vals[v]);
        }
    }

    #[test]
    fn max_scan_is_monotone_along_list(n in 1usize..1500, seed in any::<u64>()) {
        let list = gen::random_list(n, seed);
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 1000).collect();
        let ex = listkit::serial::scan(&list, &vals, &MaxOp);
        let mut prev = i64::MIN;
        for v in list.iter() {
            prop_assert!(ex[v as usize] >= prev);
            prev = prev.max(ex[v as usize]).max(vals[v as usize]);
        }
    }

    #[test]
    fn segmented_scan_via_segop_matches_reference(
        n in 1usize..1200,
        seed in any::<u64>(),
        seg_every in 1usize..80,
    ) {
        let list = gen::random_list(n, seed);
        let values: Vec<i64> = (0..n as i64).map(|i| (i % 19) - 9).collect();
        let mut starts = vec![false; n];
        for (pos, v) in list.iter().enumerate() {
            if pos % seg_every == 0 {
                starts[v as usize] = true;
            }
        }
        let wrapped = segmented::wrap(&values, &starts);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AddOp));
        let got = segmented::unwrap_exclusive(&scanned, &starts, &AddOp);
        let want = segmented::serial_segmented_scan(&list, &values, &starts, &AddOp);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn split_positions_distinct_nontail(
        n in 2usize..3000,
        m in 1usize..3000,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let list = gen::random_list(n, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let pos = gen::random_split_positions(&list, m, &mut rng);
        prop_assert!(pos.len() <= m);
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        let len = sorted.len();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), len);
        prop_assert!(pos.iter().all(|&p| p != list.tail() && (p as usize) < n));
    }
}
