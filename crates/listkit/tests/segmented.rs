//! Property coverage for `listkit::segmented`: the wrap → scan →
//! unwrap round trip and the serial segmented reference, checked
//! against a naive per-segment fold over arbitrary topologies, start
//! patterns (including consecutive starts — "empty" length-1 segments
//! — and single-flag extremes) and both commutative and non-commutative
//! operators.

use listkit::gen;
use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, ScanOp};
use listkit::segmented::{self, SegOp};
use listkit::LinkedList;
use proptest::prelude::*;

/// Oracle: walk the list in order, cut it into segments at flagged
/// vertices (the head implicitly starts one), and fold each segment
/// independently with a plain exclusive prefix.
fn naive_per_segment_fold<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    starts: &[bool],
    op: &Op,
) -> Vec<T> {
    let mut out = vec![op.identity(); list.len()];
    let mut segment: Vec<u32> = Vec::new();
    let flush = |segment: &mut Vec<u32>, out: &mut Vec<T>| {
        let mut acc = op.identity();
        for &v in segment.iter() {
            out[v as usize] = acc;
            acc = op.combine(acc, values[v as usize]);
        }
        segment.clear();
    };
    for v in list.iter() {
        if starts[v as usize] && !segment.is_empty() {
            flush(&mut segment, &mut out);
        }
        segment.push(v);
    }
    flush(&mut segment, &mut out);
    out
}

/// Deterministic start pattern from a bit source: roughly one start per
/// `period` vertices, plus whatever `force_head` dictates.
fn starts_from(n: usize, seed: u64, period: u64, head: u32, force_head: bool) -> Vec<bool> {
    let mut starts: Vec<bool> =
        (0..n as u64).map(|v| (v.wrapping_mul(seed | 1) >> 7) % period.max(1) == 0).collect();
    if force_head {
        starts[head as usize] = true;
    }
    starts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_matches_reference_and_naive_fold(
        n in 1usize..800,
        seed in any::<u64>(),
        period in 1u64..40,
        force_head in any::<bool>(),
    ) {
        let list = gen::random_list(n, seed);
        let values: Vec<i64> = (0..n as i64).map(|i| (i % 19) - 9).collect();
        let starts = starts_from(n, seed, period, list.head(), force_head);
        let want = segmented::serial_segmented_scan(&list, &values, &starts, &AddOp);
        prop_assert_eq!(&want, &naive_per_segment_fold(&list, &values, &starts, &AddOp));
        // Round trip: wrap → plain scan with the transformed operator →
        // unwrap must reproduce the segmented reference exactly.
        let wrapped = segmented::wrap(&values, &starts);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AddOp));
        let got = segmented::unwrap_exclusive(&scanned, &starts, &AddOp);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn noncommutative_operator_respects_segment_order(
        n in 1usize..400,
        seed in any::<u64>(),
        period in 1u64..25,
    ) {
        // AffineOp composition is order-sensitive: any segment scan
        // that reorders operands diverges immediately.
        let list = gen::random_list(n, seed);
        let values: Vec<Affine> = (0..n)
            .map(|i| Affine::new((i % 5) as i64 - 2, (i % 13) as i64 - 6))
            .collect();
        let starts = starts_from(n, seed, period, list.head(), false);
        let want = segmented::serial_segmented_scan(&list, &values, &starts, &AffineOp);
        prop_assert_eq!(&want, &naive_per_segment_fold(&list, &values, &starts, &AffineOp));
        let wrapped = segmented::wrap(&values, &starts);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AffineOp));
        prop_assert_eq!(segmented::unwrap_exclusive(&scanned, &starts, &AffineOp), want);
    }

    #[test]
    fn consecutive_starts_make_identity_segments(
        n in 2usize..300,
        seed in any::<u64>(),
        run in 1usize..6,
    ) {
        // A run of consecutive flagged vertices in *list order*: each
        // opens a segment that closes immediately — every flagged
        // vertex must come out as the identity.
        let list = gen::random_list(n, seed);
        let order = list.order();
        let at = (seed as usize) % n;
        let mut starts = vec![false; n];
        for k in 0..run.min(n - at) {
            starts[order[at + k] as usize] = true;
        }
        let values: Vec<i64> = (0..n as i64).map(|i| i + 1).collect();
        let got = segmented::serial_segmented_scan(&list, &values, &starts, &AddOp);
        prop_assert_eq!(&got, &naive_per_segment_fold(&list, &values, &starts, &AddOp));
        for k in 0..run.min(n - at) {
            prop_assert_eq!(got[order[at + k] as usize], 0, "flagged vertex restarts at identity");
        }
        let wrapped = segmented::wrap(&values, &starts);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AddOp));
        prop_assert_eq!(segmented::unwrap_exclusive(&scanned, &starts, &AddOp), got);
    }

    #[test]
    fn single_flag_edge_cases(n in 1usize..300, seed in any::<u64>(), flag_rank in 0usize..300) {
        // Exactly one flag, placed anywhere (head, middle, tail) — or
        // no flag at all — must both degrade to a plain scan split at
        // that single point.
        let list = gen::random_list(n, seed);
        let order = list.order();
        let values: Vec<i64> = (0..n as i64).map(|i| 2 * i - 5).collect();

        // No flags: the implicit head segment covers the whole list.
        let none = vec![false; n];
        let got = segmented::serial_segmented_scan(&list, &values, &none, &AddOp);
        prop_assert_eq!(&got, &listkit::serial::scan(&list, &values, &AddOp));

        // One flag at a random rank.
        let mut one = vec![false; n];
        one[order[flag_rank % n] as usize] = true;
        let got = segmented::serial_segmented_scan(&list, &values, &one, &AddOp);
        prop_assert_eq!(&got, &naive_per_segment_fold(&list, &values, &one, &AddOp));
        let wrapped = segmented::wrap(&values, &one);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(AddOp));
        prop_assert_eq!(segmented::unwrap_exclusive(&scanned, &one, &AddOp), got);
        prop_assert_eq!(got[order[flag_rank % n] as usize], 0);
    }

    #[test]
    fn max_operator_roundtrip(n in 1usize..300, seed in any::<u64>(), period in 1u64..15) {
        let list = gen::random_list(n, seed);
        let values: Vec<i64> = (0..n).map(|i| ((i * 37) % 101) as i64 - 50).collect();
        let starts = starts_from(n, seed, period, list.head(), true);
        let want = segmented::serial_segmented_scan(&list, &values, &starts, &MaxOp);
        prop_assert_eq!(&want, &naive_per_segment_fold(&list, &values, &starts, &MaxOp));
        let wrapped = segmented::wrap(&values, &starts);
        let scanned = listkit::serial::scan(&list, &wrapped, &SegOp(MaxOp));
        prop_assert_eq!(segmented::unwrap_exclusive(&scanned, &starts, &MaxOp), want);
    }
}
