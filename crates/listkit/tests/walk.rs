//! Byte-parity of the K-lane interleaved walker against one-cursor
//! oracles, across the topology zoo (random, blocked, strided,
//! chain/sequential, reversed), degenerate sizes (1 / 2 / odd /
//! pow2 ± 1 — lists cannot be empty by construction), every lane count
//! the engine tunes over, and the lane-refill edge case of wildly
//! skewed chain lengths (one huge chain + many singletons).

use listkit::gen::{self, Layout};
use listkit::ops::{AddOp, Affine, AffineOp, ScanOp, XorOp};
use listkit::sharded::ShardedList;
use listkit::walk::{self, BitSet, LaneStats, WalkPolicy};
use listkit::{Idx, LinkedList};
use proptest::prelude::*;

const LANE_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// The zoo: every layout the generators produce, with strides kept
/// coprime by the caller's choice of `n`.
fn zoo(n: usize, seed: u64) -> Vec<LinkedList> {
    let mut lists = vec![
        gen::list_with_layout(n, Layout::Random, seed),
        gen::list_with_layout(n, Layout::Blocked(16), seed ^ 1),
        gen::list_with_layout(n, Layout::Sequential, 0),
        gen::list_with_layout(n, Layout::Reversed, 0),
    ];
    if n > 3 && !n.is_multiple_of(3) {
        lists.push(gen::list_with_layout(n, Layout::Strided(3), 0));
    }
    lists
}

/// Split the list into chains at every `period`-th vertex of the
/// traversal (period 1 = all-singleton chains): returns the boundary
/// bitset and the chain heads in sublist order.
fn split_chains(list: &LinkedList, period: usize) -> (BitSet, Vec<Idx>) {
    let n = list.len();
    let mut boundary = BitSet::new();
    boundary.reset(n);
    boundary.set(list.tail() as usize);
    let mut heads = vec![list.head()];
    for (pos, v) in list.iter().enumerate() {
        if pos % period.max(1) == period.max(1) - 1 && !list.is_tail(v) {
            boundary.set(v as usize);
            heads.push(list.next_of(v));
        }
    }
    (boundary, heads)
}

/// One-cursor oracle for [`walk::reduce_chains`].
fn oracle_reduce<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    boundary: &BitSet,
) -> Vec<(T, Idx)> {
    heads
        .iter()
        .map(|&h| {
            let mut acc = op.identity();
            let mut cur = h as usize;
            loop {
                acc = op.combine(acc, values[cur]);
                if boundary.get(cur) {
                    return (acc, cur as Idx);
                }
                cur = list.next_of(cur as Idx) as usize;
            }
        })
        .collect()
}

/// One-cursor oracle for [`walk::expand_chains`].
fn oracle_expand<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    heads: &[Idx],
    seeds: &[T],
    boundary: &BitSet,
) -> Vec<T> {
    let mut out = vec![op.identity(); list.len()];
    for (&h, &seed) in heads.iter().zip(seeds) {
        let mut acc = seed;
        let mut cur = h as usize;
        loop {
            out[cur] = acc;
            acc = op.combine(acc, values[cur]);
            if boundary.get(cur) {
                break;
            }
            cur = list.next_of(cur as Idx) as usize;
        }
    }
    out
}

/// Check every walker primitive against its oracle on one (list,
/// split) at one lane count.
fn check_primitives(list: &LinkedList, period: usize, lanes: usize) {
    let n = list.len();
    let (boundary, heads) = split_chains(list, period);
    let policy = WalkPolicy::with_lanes(lanes);
    let values: Vec<Affine> =
        (0..n).map(|i| Affine::new((i % 5) as i64 - 2, (i % 11) as i64 - 5)).collect();
    let tag = format!("n = {n}, period = {period}, lanes = {lanes}");

    // reduce_chains vs oracle (non-commutative: order bugs cannot hide).
    let mut sums = vec![(AffineOp.identity(), 0 as Idx); heads.len()];
    let mut stats = LaneStats::default();
    walk::reduce_chains(list, &values, &AffineOp, &heads, &boundary, policy, &mut sums, &mut stats);
    assert_eq!(sums, oracle_reduce(list, &values, &AffineOp, &heads, &boundary), "{tag}");
    assert_eq!(stats.steps, n as u64, "reduce visits every vertex once: {tag}");

    // expand_chains vs oracle.
    let seeds: Vec<Affine> =
        (0..heads.len()).map(|i| Affine::new((i % 3) as i64 - 1, (i % 7) as i64 - 3)).collect();
    let mut got = vec![AffineOp.identity(); n];
    walk::expand_chains(
        list,
        &values,
        &AffineOp,
        &heads,
        &seeds,
        &boundary,
        policy,
        |v, x| got[v] = x,
        &mut stats,
    );
    assert_eq!(got, oracle_expand(list, &values, &AffineOp, &heads, &seeds, &boundary), "{tag}");

    // count_chains + expand_rank_chains reproduce serial ranks end to
    // end (seeding each chain with the exclusive prefix of lengths in
    // sublist order — exactly the Reid-Miller pipeline).
    let mut lens = vec![(0u64, 0 as Idx); heads.len()];
    walk::count_chains(list, &heads, &boundary, policy, &mut lens, &mut stats);
    assert_eq!(lens.iter().map(|&(l, _)| l).sum::<u64>(), n as u64, "{tag}");
    // Chain order along the list: heads are discovered in traversal
    // order by split_chains, so the running sum is the chain's start.
    let mut rank_seeds = vec![0u64; heads.len()];
    let mut acc = 0u64;
    for (i, &(l, _)) in lens.iter().enumerate() {
        rank_seeds[i] = acc;
        acc += l;
    }
    let mut ranks = vec![0u64; n];
    walk::expand_rank_chains(
        list,
        &heads,
        &rank_seeds,
        &boundary,
        policy,
        |v, r| ranks[v] = r,
        &mut stats,
    );
    assert_eq!(ranks, listkit::serial::rank(list), "{tag}");
}

#[test]
fn zoo_parity_across_lane_counts() {
    for n in [1usize, 2, 3, 7, 31, 32, 33, 128, 129, 1000] {
        for list in zoo(n, 3 * n as u64 + 1) {
            for period in [1usize, 2, 37, n.max(1)] {
                for lanes in LANE_SWEEP {
                    check_primitives(&list, period, lanes);
                }
            }
        }
    }
}

#[test]
fn prefetch_off_is_byte_identical() {
    let list = gen::random_list(5000, 9);
    let (boundary, heads) = split_chains(&list, 41);
    let values: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
    let run = |prefetch: bool| {
        let mut sums = vec![(0u64, 0 as Idx); heads.len()];
        let mut stats = LaneStats::default();
        let policy = WalkPolicy { lanes: 8, prefetch };
        walk::reduce_chains(
            &list, &values, &XorOp, &heads, &boundary, policy, &mut sums, &mut stats,
        );
        sums
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn sharded_local_walks_parity_across_lane_counts() {
    // The length-terminated (runs) walker through its real consumer:
    // sharded rank + non-commutative sharded scan vs the serial oracle.
    for n in [1usize, 2, 5, 33, 129, 1000, 4097] {
        let values: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 3) as i64 - 1, (i % 13) as i64 - 6)).collect();
        for list in zoo(n, n as u64) {
            let rank_ref = listkit::serial::rank(&list);
            let scan_ref = listkit::serial::scan(&list, &values, &AffineOp);
            for shard_size in [1usize, 16, n.div_ceil(3).max(1), n] {
                for lanes in LANE_SWEEP {
                    let sharded = ShardedList::build(&list, shard_size).with_lanes(lanes);
                    let tag = format!("n = {n}, shard = {shard_size}, lanes = {lanes}");
                    assert_eq!(sharded.rank(), rank_ref, "{tag}");
                    assert_eq!(sharded.scan(&values, &AffineOp), scan_ref, "{tag}");
                }
            }
        }
    }
}

#[test]
fn skewed_chain_lengths_refill_correctly() {
    // The lane-refill edge case: one chain holds almost every vertex,
    // the rest are singletons. Lanes drain to a single live cursor for
    // most of the walk (occupancy tanks), but results must not move.
    let n = 20_000;
    let list = gen::random_list(n, 77);
    let m = 256; // singleton chains carved off the front of the list
    let order = list.order();
    let mut boundary = BitSet::new();
    boundary.reset(n);
    boundary.set(list.tail() as usize);
    let mut heads = vec![list.head()];
    // The first m traversal positions each end a chain immediately:
    // m singletons, then one chain of n - m vertices.
    for &v in order.iter().take(m) {
        boundary.set(v as usize);
        heads.push(list.next_of(v));
    }
    let values: Vec<i64> = (0..n as i64).map(|i| (i % 17) - 8).collect();
    let reference = oracle_reduce(&list, &values, &AddOp, &heads, &boundary);
    for lanes in LANE_SWEEP {
        let mut sums = vec![(0i64, 0 as Idx); heads.len()];
        let mut stats = LaneStats::default();
        walk::reduce_chains(
            &list,
            &values,
            &AddOp,
            &heads,
            &boundary,
            WalkPolicy::with_lanes(lanes),
            &mut sums,
            &mut stats,
        );
        assert_eq!(sums, reference, "lanes = {lanes}");
        assert_eq!(stats.steps, n as u64);
        if lanes >= 8 {
            // The giant chain serializes the tail of the walk.
            assert!(
                stats.occupancy() < 0.9,
                "skew must show up in occupancy: {stats:?} at lanes = {lanes}"
            );
        }
    }
    // The reverse skew: the giant chain is *first* in the head order,
    // so refill happens while it is still running.
    let mut heads_rev = heads.clone();
    heads_rev.rotate_left(1);
    let reference = oracle_reduce(&list, &values, &AddOp, &heads_rev, &boundary);
    for lanes in LANE_SWEEP {
        let mut sums = vec![(0i64, 0 as Idx); heads_rev.len()];
        let mut stats = LaneStats::default();
        walk::reduce_chains(
            &list,
            &values,
            &AddOp,
            &heads_rev,
            &boundary,
            WalkPolicy::with_lanes(lanes),
            &mut sums,
            &mut stats,
        );
        assert_eq!(sums, reference, "giant-first, lanes = {lanes}");
    }
}

#[test]
fn singleton_fragments_keep_occupancy_at_most_one() {
    // Regression: a traversal alternating between two shards makes
    // every fragment a singleton; the runs walker refills a retired
    // lane on every visit, and a refill-into-the-same-sweep bug made
    // `steps` outrun `slots` (occupancy 6400%). Occupancy is a
    // *fraction* — it must never exceed 1, and results must not move.
    let n = 2048usize;
    let order: Vec<Idx> = (0..n as Idx / 2).flat_map(|i| [i, i + n as Idx / 2]).collect();
    let list = LinkedList::from_order(&order).expect("alternating order is a permutation");
    let rank_ref = listkit::serial::rank(&list);
    for lanes in LANE_SWEEP {
        let sharded = ShardedList::build(&list, n / 2).with_lanes(lanes);
        assert_eq!(sharded.fragment_count(), n, "every fragment is a singleton");
        assert_eq!(sharded.rank(), rank_ref, "lanes = {lanes}");
        let stats = sharded.lane_stats();
        assert!(stats.steps >= n as u64);
        assert!(
            stats.occupancy() <= 1.0 + 1e-9,
            "occupancy is a fraction: {stats:?} at lanes = {lanes}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_split_parity(
        n in 1usize..600,
        seed in any::<u64>(),
        period in 1usize..50,
        lane_ix in 0usize..LANE_SWEEP.len(),
    ) {
        let list = gen::random_list(n, seed);
        check_primitives(&list, period, LANE_SWEEP[lane_ix]);
    }

    #[test]
    fn sharded_random_parity(
        n in 1usize..600,
        seed in any::<u64>(),
        shard_size in 1usize..80,
        lane_ix in 0usize..LANE_SWEEP.len(),
    ) {
        let list = gen::random_list(n, seed);
        let values: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
        let sharded = ShardedList::build(&list, shard_size).with_lanes(LANE_SWEEP[lane_ix]);
        prop_assert_eq!(sharded.rank(), listkit::serial::rank(&list));
        prop_assert_eq!(
            sharded.scan(&values, &AddOp),
            listkit::serial::scan(&list, &values, &AddOp)
        );
    }
}
