//! The published C90 loop coefficients (paper §3).
//!
//! Every vectorized loop is modelled as `T(x) = te·x + t0` C90 clock
//! cycles over `x` live sublists. The scan/rank distinction matters:
//! ranking packs (value, link) into one word, halving gather traffic in
//! the two dominant loops.

/// Coefficients of one traversal phase: link-step loop (`a·x + b`) and
/// pack loop (`c·x + d`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseCoeffs {
    /// Per-element cycles of one link-traversal step.
    pub a: f64,
    /// Startup cycles of one link-traversal step.
    pub b: f64,
    /// Per-element cycles of one load balance (pack).
    pub c: f64,
    /// Startup cycles of one load balance.
    pub d: f64,
}

impl PhaseCoeffs {
    /// The ratio `c/a` appearing in the Eq. (4) recurrence.
    pub fn c_over_a(&self) -> f64 {
        self.c / self.a
    }
}

/// Complete coefficient set for the algorithm on one machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelCoeffs {
    /// Phase 1 (sublist sums).
    pub phase1: PhaseCoeffs,
    /// Phase 3 (final scan).
    pub phase3: PhaseCoeffs,
    /// Initialization: `e·x + f` over `m+1` sublists.
    pub init: (f64, f64),
    /// Building the reduced list of sublist sums.
    pub findsub: (f64, f64),
    /// Restoring the original links.
    pub restore: (f64, f64),
    /// Serial fallback cost per vertex (Phase 2 on small lists).
    pub serial_per_vertex: f64,
    /// One Wyllie round over `x` elements: `(te, t0)` (Phase 2 on
    /// moderate lists).
    pub wyllie_round: (f64, f64),
}

impl ModelCoeffs {
    /// List **scan** on the C90 (paper §3 values).
    pub fn c90_scan() -> Self {
        Self {
            phase1: PhaseCoeffs { a: 3.4, b: 35.0, c: 8.2, d: 1200.0 },
            phase3: PhaseCoeffs { a: 4.6, b: 28.0, c: 7.2, d: 950.0 },
            init: (22.0, 1800.0),
            findsub: (11.0, 650.0),
            restore: (4.2, 300.0),
            serial_per_vertex: 44.0,
            wyllie_round: (2.8, 100.0),
        }
    }

    /// List **rank** on the C90: packed one-gather traversal loops
    /// (calibrated so the 1-CPU asymptote is the paper's 5.1
    /// cycles/vertex vs 7.4 for scan).
    pub fn c90_rank() -> Self {
        let mut c = Self::c90_scan();
        c.phase1.a = 1.9;
        c.phase3.a = 3.3;
        c.serial_per_vertex = 42.1;
        c
    }

    /// Combined per-vertex traversal coefficient `a1 + a3` — the
    /// asymptotic cycles/vertex before overheads (Eq. 5's leading `8n`).
    pub fn combined_a(&self) -> f64 {
        self.phase1.a + self.phase3.a
    }

    /// Combined startup `b1 + b3` (Eq. 5's `62 (n/m) ln m` coefficient).
    pub fn combined_b(&self) -> f64 {
        self.phase1.b + self.phase3.b
    }

    /// Combined pack `c1 + c3`.
    pub fn combined_c(&self) -> f64 {
        self.phase1.c + self.phase3.c
    }

    /// Combined pack startup `d1 + d3` (Eq. 5's `2150 l`).
    pub fn combined_d(&self) -> f64 {
        self.phase1.d + self.phase3.d
    }

    /// Per-sublist overhead `e` = init + findsub + restore per-element
    /// coefficients.
    pub fn combined_e(&self) -> f64 {
        self.init.0 + self.findsub.0 + self.restore.0
    }

    /// Fixed overhead `f` = init + findsub + restore startups
    /// (Eq. 5's `2750`).
    pub fn combined_f(&self) -> f64 {
        self.init.1 + self.findsub.1 + self.restore.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_constants_decode() {
        // Eq. (5): T(n) ≈ 8n + 62 (n/m) ln m + (8 S1 + 96)(m+1)
        //                + 2150 l + 2750.
        let c = ModelCoeffs::c90_scan();
        assert!((c.combined_a() - 8.0).abs() < 1e-12);
        assert!((c.combined_b() - 63.0).abs() < 1e-12); // paper rounds to 62
        assert!((c.combined_d() - 2150.0).abs() < 1e-12);
        assert!((c.combined_f() - 2750.0).abs() < 1e-12);
        // The 96 (m+1) term: e + serial Phase 2 + one pack ≈ 96.
        let per_sublist = c.combined_e() + c.serial_per_vertex + c.combined_c();
        assert!(
            (per_sublist - 96.0).abs() < 1.0,
            "per-sublist constant {per_sublist} should be ≈ 96"
        );
    }

    #[test]
    fn rank_is_cheaper_than_scan() {
        let s = ModelCoeffs::c90_scan();
        let r = ModelCoeffs::c90_rank();
        assert!(r.combined_a() < s.combined_a());
        // Paper: rank 5.1 vs scan 7.4 cycles/vertex asymptotically; the
        // a-coefficients carry that ratio.
        assert!((r.combined_a() - 5.2).abs() < 0.2);
    }

    #[test]
    fn c_over_a_ratio() {
        let c = ModelCoeffs::c90_scan();
        assert!((c.phase1.c_over_a() - 8.2 / 3.4).abs() < 1e-12);
    }
}
