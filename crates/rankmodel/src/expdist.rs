//! Sublist-length distribution (paper §4.1).
//!
//! Splitting a list of length `n` at `m` random positions produces `m+1`
//! sublists whose lengths, for large `n ≈ m → ∞`, behave like mutually
//! independent exponential variates with mean `n/m` (Proposition 2,
//! after Feller). Hence
//!
//! * `Prob[L > x] ≈ e^(−m·x/n)`                         (Eq. 1)
//! * `g(x) = (m+1)·e^(−m·x/n)`                          (Eq. 2)
//! * `E[L_(j)] ≈ (n/m)·ln((m+1)/(m−j+0.5))`             (j-th shortest)
//! * `E[L_(0)] ≈ (n/m)·ln((m+1)/(m+0.5))` and
//!   `E[L_(m)] ≈ (n/m)·ln(2m+2)` as special cases.
//!
//! The empirical sampler reproduces Fig. 9's error bars.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `Prob[L > x]` for a sublist length when a list of `n` vertices is
/// split into `m+1` sublists (Eq. 1).
pub fn survival(x: f64, n: f64, m: f64) -> f64 {
    (-m * x / n).exp()
}

/// `g(x)`: expected number of sublists with length greater than `x`
/// (Eq. 2). This is the expected vector length after traversing `x`
/// links in each live sublist.
pub fn g(x: f64, n: f64, m: f64) -> f64 {
    (m + 1.0) * survival(x, n, m)
}

/// Derivative `g'(x) = −(m/n)·g(x)` (used in the Eq. 4 recurrence).
pub fn g_prime(x: f64, n: f64, m: f64) -> f64 {
    -(m / n) * g(x, n, m)
}

/// Expected length of the j-th shortest of the `m+1` sublists,
/// `0 ≤ j ≤ m`: solve `survival(x) = (m − j + 0.5)/(m + 1)` for `x`.
///
/// The paper notes the estimate is reasonable for `n > 1000`, `m > 100`.
pub fn expected_jth_shortest(j: usize, n: f64, m: f64) -> f64 {
    assert!(j as f64 <= m, "j must be in 0..=m");
    (n / m) * ((m + 1.0) / (m - j as f64 + 0.5)).ln()
}

/// Expected length of the shortest sublist: `(n/m)·ln((m+1)/(m+0.5))`.
pub fn expected_shortest(n: f64, m: f64) -> f64 {
    expected_jth_shortest(0, n, m)
}

/// Expected length of the longest sublist: `(n/m)·ln(2m+2)`.
///
/// This bounds the parallel time of Phases 1 and 3 from below and is the
/// reason the algorithm needs `m ≫ p`.
pub fn expected_longest(n: f64, m: f64) -> f64 {
    expected_jth_shortest(m as usize, n, m)
}

/// Draw one sample of the `m+1` sublist lengths produced by splitting a
/// list of `n` vertices at `m` distinct random non-tail positions,
/// returned **sorted ascending** (order statistics).
///
/// Sampling is by rank, which is distributionally identical to choosing
/// random vertices of a random-order list (what the implementation
/// does) but needs no actual list.
pub fn sample_sorted_lengths(n: usize, m: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(m < n, "need m < n distinct non-tail split positions");
    // Choose m distinct ranks from 0..n-1 (the split vertices become
    // sublist tails; the global tail, rank n-1, is excluded because
    // splitting there is a no-op).
    let mut tails = sample_distinct(n - 1, m, rng);
    tails.sort_unstable();
    let mut lengths = Vec::with_capacity(m + 1);
    let mut prev: isize = -1;
    for &t in &tails {
        lengths.push((t as isize - prev) as usize);
        prev = t as isize;
    }
    lengths.push((n as isize - 1 - prev) as usize);
    lengths.sort_unstable();
    lengths
}

/// Mean over `samples` draws of the j-th shortest sublist length, for
/// all `j` (Fig. 9's observed curve).
pub fn mean_sorted_lengths(n: usize, m: usize, samples: usize, seed: u64) -> Vec<f64> {
    let mut acc = vec![0.0f64; m + 1];
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(s as u64));
        let lengths = sample_sorted_lengths(n, m, &mut rng);
        for (a, &l) in acc.iter_mut().zip(&lengths) {
            *a += l as f64;
        }
    }
    for a in &mut acc {
        *a /= samples as f64;
    }
    acc
}

/// Empirical `g(x)`: the mean (over `samples` random splits) number of
/// sublists longer than `x`, for each query point. Validates Eq. (2)
/// directly — the quantity the pack schedule is built on.
pub fn empirical_g(n: usize, m: usize, xs: &[usize], samples: usize, seed: u64) -> Vec<f64> {
    let mut acc = vec![0.0f64; xs.len()];
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(s as u64));
        let lengths = sample_sorted_lengths(n, m, &mut rng);
        for (a, &x) in acc.iter_mut().zip(xs) {
            // lengths sorted ascending: count strictly greater via
            // partition point.
            let idx = lengths.partition_point(|&l| l <= x);
            *a += (lengths.len() - idx) as f64;
        }
    }
    for a in &mut acc {
        *a /= samples as f64;
    }
    acc
}

/// Floyd's algorithm for `k` distinct values in `0..bound`.
fn sample_distinct(bound: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= bound);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in bound - k..bound {
        let t = rng.random_range(0..=j as u64) as usize;
        let v = if chosen.contains(&t) { j } else { t };
        chosen.insert(v);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_endpoints() {
        assert!((survival(0.0, 10_000.0, 200.0) - 1.0).abs() < 1e-12);
        assert!(survival(1e9, 10_000.0, 200.0) < 1e-12);
    }

    #[test]
    fn g_at_zero_is_sublist_count() {
        // Fig. 10's dotted curve starts at m+1 = 200.
        assert!((g(0.0, 10_000.0, 199.0) - 200.0).abs() < 1e-12);
        assert!(g(50.0, 10_000.0, 199.0) < 200.0);
    }

    #[test]
    fn g_is_monotone_decreasing() {
        let (n, m) = (10_000.0, 199.0);
        let mut prev = g(0.0, n, m);
        for i in 1..200 {
            let cur = g(i as f64, n, m);
            assert!(cur < prev);
            prev = cur;
        }
    }

    #[test]
    fn g_prime_matches_finite_difference() {
        let (n, m) = (10_000.0, 199.0);
        let x = 37.0;
        let h = 1e-4;
        let fd = (g(x + h, n, m) - g(x - h, n, m)) / (2.0 * h);
        assert!((g_prime(x, n, m) - fd).abs() < 1e-6);
    }

    #[test]
    fn paper_special_cases() {
        let (n, m) = (10_000.0, 199.0);
        let shortest = expected_shortest(n, m);
        let longest = expected_longest(n, m);
        assert!((shortest - (n / m) * ((m + 1.0) / (m + 0.5)).ln()).abs() < 1e-9);
        assert!((longest - (n / m) * (2.0 * m + 2.0).ln()).abs() < 1e-9);
        // Longest ≈ 6× the mean at m = 199 (ln(400) ≈ 6).
        assert!(longest / (n / m) > 5.5 && longest / (n / m) < 6.5);
    }

    #[test]
    fn jth_shortest_is_increasing_in_j() {
        let (n, m) = (10_000.0, 99.0);
        let mut prev = 0.0;
        for j in 0..=99 {
            let e = expected_jth_shortest(j, n, m);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn samples_partition_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let lengths = sample_sorted_lengths(10_000, 199, &mut rng);
        assert_eq!(lengths.len(), 200);
        assert_eq!(lengths.iter().sum::<usize>(), 10_000);
        assert!(lengths.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(lengths.iter().all(|&l| l >= 1));
    }

    #[test]
    fn observed_matches_expected_fig9() {
        // Fig. 9's comparison: 20 samples at n = 10_000. The expected
        // curve should track observed means within a loose tolerance for
        // middling j (extreme order statistics are noisier).
        let (n, m) = (10_000usize, 199usize);
        let means = mean_sorted_lengths(n, m, 20, 42);
        for j in (20..180).step_by(20) {
            let expected = expected_jth_shortest(j, n as f64, m as f64);
            let observed = means[j];
            let rel = (observed - expected).abs() / expected;
            assert!(
                rel < 0.25,
                "j={j}: expected {expected:.1}, observed {observed:.1}, rel err {rel:.2}"
            );
        }
    }

    #[test]
    fn empirical_g_tracks_analytic() {
        let (n, m) = (10_000usize, 199usize);
        let xs: Vec<usize> = (0..200).step_by(20).collect();
        let emp = empirical_g(n, m, &xs, 40, 3);
        for (&x, &e) in xs.iter().zip(&emp) {
            let a = g(x as f64, n as f64, m as f64);
            let tol = (0.15 * a).max(2.0);
            assert!((e - a).abs() < tol, "x={x}: empirical {e:.1} vs analytic {a:.1}");
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs = sample_distinct(100, 60, &mut rng);
        xs.sort_unstable();
        let len = xs.len();
        xs.dedup();
        assert_eq!(xs.len(), len);
        assert!(xs.iter().all(|&x| x < 100));
    }
}
