//! # rankmodel — the analysis of Reid-Miller 1994, §4
//!
//! The paper tunes its list-ranking algorithm *analytically*: the sublist
//! lengths produced by random splitting are approximately i.i.d.
//! exponential (Feller's order-statistics result), which yields a closed
//! form for `g(x)`, the expected number of sublists longer than `x`.
//! Minimizing the total expected time over the load-balancing points
//! `S_1 < S_2 < … < S_l` gives the recurrence of Eq. (4); substituting
//! back gives the cost model of Eq. (3) and the simplified Eq. (5). The
//! number of sublists `m` and the first balancing point `S_1` are chosen
//! by minimizing the model, and fitted as cubic polynomials in `log n`.
//!
//! This crate implements each of those pieces:
//!
//! * [`expdist`] — `Prob[L > x]`, `g(x)`, expected j-th shortest sublist
//!   length, and empirical sampling (reproduces Fig. 9);
//! * [`schedule`] — the Eq. (4) recurrence and schedule construction
//!   (reproduces the step function of Fig. 10);
//! * [`coeffs`] — the published C90 loop coefficients;
//! * [`predict`] — Eq. (3) evaluation, the Eq. (5) closed form, and the
//!   multiprocessor variant (Eq. 6);
//! * [`tuner`] — minimization over `(m, S_1)` with recursive Phase-2
//!   strategy selection, plus polylog curve fitting;
//! * [`polyfit`], [`regress`] — small dense least-squares machinery
//!   (own implementation; no linear-algebra dependency).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coeffs;
pub mod expdist;
pub mod polyfit;
pub mod predict;
pub mod regress;
pub mod schedule;
pub mod tuner;

pub use coeffs::{ModelCoeffs, PhaseCoeffs};
pub use predict::Prediction;
pub use schedule::Schedule;
pub use tuner::{TunedParams, Tuner};
