//! Least-squares polynomial fitting (normal equations + Gaussian
//! elimination). Small and self-contained: the paper fits `m(n)` and
//! `S_1(n)` as cubic polynomials of `log n`, which needs nothing heavier.

/// Fit a degree-`deg` polynomial to `(xs, ys)` by least squares; returns
/// coefficients lowest-order first (`c[0] + c[1]·x + …`).
///
/// # Panics
/// Panics if fewer than `deg + 1` points are supplied or the normal
/// equations are singular (e.g. duplicate xs for an exact fit).
pub fn polyfit(xs: &[f64], ys: &[f64], deg: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len());
    let k = deg + 1;
    assert!(xs.len() >= k, "need at least {k} points for degree {deg}");
    // Normal equations: (AᵀA) c = Aᵀy with A the Vandermonde matrix.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = Vec::with_capacity(2 * k - 1);
        let mut p = 1.0;
        for _ in 0..2 * k - 1 {
            powers.push(p);
            p *= x;
        }
        for i in 0..k {
            aty[i] += powers[i] * y;
            for j in 0..k {
                ata[i][j] += powers[i + j];
            }
        }
    }
    solve(ata, aty)
}

/// Evaluate a polynomial (lowest-order-first coefficients) at `x` by
/// Horner's rule.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Gaussian elimination with partial pivoting on an `k×k` system.
#[allow(clippy::needless_range_loop)] // index-style is clearest for elimination
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let k = b.len();
    for col in 0..k {
        // Pivot.
        let pivot = (col..k)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        assert!(a[pivot][col].abs() > 1e-12, "singular normal equations");
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..k {
            let f = a[row][col] / a[col][col];
            for c in col..k {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut s = b[row];
        for c in row + 1..k {
            s -= a[row][c] * x[c];
        }
        x[row] = s / a[row][row];
    }
    x
}

/// Root-mean-square residual of a fit.
pub fn rms_residual(coeffs: &[f64], xs: &[f64], ys: &[f64]) -> f64 {
    let sum: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = polyval(coeffs, x) - y;
            e * e
        })
        .sum();
    (sum / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cubic_recovery() {
        let truth = [2.0, -1.5, 0.25, 0.01];
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.7 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&truth, x)).collect();
        let fit = polyfit(&xs, &ys, 3);
        for (f, t) in fit.iter().zip(&truth) {
            assert!((f - t).abs() < 1e-6, "fit {fit:?} vs truth {truth:?}");
        }
        assert!(rms_residual(&fit, &xs, &ys) < 1e-6);
    }

    #[test]
    fn linear_fit_of_noisy_line() {
        // y = 3x + 5 with deterministic "noise".
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 3.0 * x + 5.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = polyfit(&xs, &ys, 1);
        assert!((fit[1] - 3.0).abs() < 0.01);
        assert!((fit[0] - 5.0).abs() < 0.5);
    }

    #[test]
    fn horner_evaluation() {
        assert_eq!(polyval(&[1.0, 2.0, 3.0], 2.0), 1.0 + 4.0 + 12.0);
        assert_eq!(polyval(&[], 5.0), 0.0);
        assert_eq!(polyval(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // Quadratic through many exact points.
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 4.0 - x + 0.5 * x * x).collect();
        let fit = polyfit(&xs, &ys, 2);
        assert!((fit[0] - 4.0).abs() < 1e-7);
        assert!((fit[1] + 1.0).abs() < 1e-7);
        assert!((fit[2] - 0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_underdetermined() {
        let _ = polyfit(&[1.0, 2.0], &[1.0, 2.0], 3);
    }
}
