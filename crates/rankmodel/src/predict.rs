//! Cost prediction: Eq. (3), Eq. (5), and the multiprocessor form (Eq. 6).
//!
//! Eq. (3) (per phase, `p` processors, bandwidth contention folded into
//! the per-element coefficients):
//!
//! ```text
//! T = Σ_k (S_{k+1} − S_k)·(a·g(S_k)/p + b)     traversal
//!   + Σ_k (c·g(S_k)/p + d)                      load balancing
//! ```
//!
//! plus `e(m+1)/p + f` terms for initialization, reduced-list
//! construction, Phase 2 and restoration.

use crate::coeffs::{ModelCoeffs, PhaseCoeffs};
use crate::expdist;
use crate::schedule::Schedule;

/// How Phase 2 (the scan of the reduced list of `m+1` sums) is done.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase2Choice {
    /// Serial traversal (best for small reduced lists).
    Serial,
    /// Wyllie pointer jumping (moderate sizes: vectorizes, `log` small).
    Wyllie,
    /// Recursive application of the full algorithm (large reduced lists).
    Recurse,
}

/// A cost prediction with per-phase breakdown (cycles).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// List length.
    pub n: usize,
    /// Number of split positions (`m+1` sublists).
    pub m: usize,
    /// First load-balance point.
    pub s1: f64,
    /// Load balances in Phase 1.
    pub l1: usize,
    /// Load balances in Phase 3.
    pub l3: usize,
    /// Initialization cycles.
    pub init: f64,
    /// Phase 1 cycles (traversal + packs).
    pub phase1: f64,
    /// Reduced-list construction cycles.
    pub findsub: f64,
    /// Phase 2 cycles.
    pub phase2: f64,
    /// Phase 2 strategy assumed.
    pub phase2_choice: Phase2Choice,
    /// Phase 3 cycles.
    pub phase3: f64,
    /// Restoration cycles.
    pub restore: f64,
    /// Total cycles.
    pub total: f64,
}

/// Evaluate one phase of Eq. (3) for a given schedule.
///
/// `p` divides vector lengths across processors (Eq. 6); `te_factor`
/// scales per-element costs (memory contention).
pub fn phase_time(
    n: f64,
    m: f64,
    sched: &Schedule,
    ph: &PhaseCoeffs,
    p: f64,
    te_factor: f64,
) -> f64 {
    let a = ph.a * te_factor;
    let c = ph.c * te_factor;
    let seg = sched.segments();
    let mut t = 0.0;
    // Traversal: between boundaries, vector length is g(at segment start).
    for w in seg.windows(2) {
        let live = expdist::g(w[0], n, m);
        t += (w[1] - w[0]) * (a * live / p + ph.b);
    }
    // Packs: the k-th pack compresses the vector live since the previous
    // boundary.
    for (k, _) in sched.points.iter().enumerate() {
        let prev = if k == 0 { 0.0 } else { sched.points[k - 1] };
        let live = expdist::g(prev, n, m);
        t += c * live / p + ph.d;
    }
    t
}

/// Phase-2 cost of scanning a reduced list of `x` vertices serially.
pub fn phase2_serial(coeffs: &ModelCoeffs, x: usize) -> f64 {
    coeffs.serial_per_vertex * x as f64
}

/// Phase-2 cost via Wyllie pointer jumping: `⌈log2(x−1)⌉` rounds over a
/// list of `x` vertices, `p` processors.
pub fn phase2_wyllie(coeffs: &ModelCoeffs, x: usize, p: f64, te_factor: f64) -> f64 {
    if x <= 1 {
        return 0.0;
    }
    let rounds = ((x - 1) as f64).log2().ceil().max(1.0);
    let (te, t0) = coeffs.wyllie_round;
    rounds * (te * te_factor * x as f64 / p + t0)
}

/// Full prediction for the algorithm at `(n, m, s1)` with an explicit
/// Phase-2 cost (supplied by the tuner, which may recurse).
#[allow(clippy::too_many_arguments)]
pub fn predict_with_phase2(
    coeffs: &ModelCoeffs,
    n: usize,
    m: usize,
    s1: f64,
    p: usize,
    te_factor: f64,
    stop_g: f64,
    phase2: (f64, Phase2Choice),
) -> Prediction {
    let nf = n as f64;
    let mf = m as f64;
    let pf = p as f64;
    let x = (m + 1) as f64;

    let sched1 = Schedule::from_s1(nf, mf, s1, coeffs.phase1.c_over_a(), stop_g);
    let sched3 = Schedule::from_s1(nf, mf, s1, coeffs.phase3.c_over_a(), stop_g);

    let init = coeffs.init.0 * te_factor * x / pf + coeffs.init.1;
    let phase1 = phase_time(nf, mf, &sched1, &coeffs.phase1, pf, te_factor);
    let findsub = coeffs.findsub.0 * te_factor * x / pf + coeffs.findsub.1;
    let phase3 = phase_time(nf, mf, &sched3, &coeffs.phase3, pf, te_factor);
    let restore = coeffs.restore.0 * te_factor * x / pf + coeffs.restore.1;
    let (phase2_cost, phase2_choice) = phase2;

    Prediction {
        n,
        m,
        s1,
        l1: sched1.len(),
        l3: sched3.len(),
        init,
        phase1,
        findsub,
        phase2: phase2_cost,
        phase2_choice,
        phase3,
        restore,
        total: init + phase1 + findsub + phase2_cost + phase3 + restore,
    }
}

/// The closed-form Eq. (5) estimate (1 CPU, list scan):
///
/// ```text
/// T(n) ≈ 8n + 62 (n/m) ln m + (8 S1 + 96)(m+1) + 2150 l + 2750
/// ```
///
/// The paper notes this *over*-estimates the measured time (Eq. 3 with
/// the real schedule is the accurate one); we reproduce it for the
/// model-check experiment.
pub fn eq5_estimate(n: f64, m: f64, s1: f64, l: f64) -> f64 {
    8.0 * n + 62.0 * (n / m) * m.ln() + (8.0 * s1 + 96.0) * (m + 1.0) + 2150.0 * l + 2750.0
}

/// An algorithm family the dispatcher can pick, mirroring the five
/// implementations in `listrank` (kept as a separate enum because this
/// crate sits *below* `listrank` in the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgChoice {
    /// Pointer-chasing serial traversal.
    Serial,
    /// Wyllie pointer jumping.
    Wyllie,
    /// Miller–Reif random mate.
    MillerReif,
    /// Anderson–Miller random mate with queues.
    AndersonMiller,
    /// Reid-Miller sublists.
    ReidMiller,
}

impl AlgChoice {
    /// All five choices, in the paper's presentation order.
    pub const ALL: [AlgChoice; 5] = [
        AlgChoice::Serial,
        AlgChoice::Wyllie,
        AlgChoice::MillerReif,
        AlgChoice::AndersonMiller,
        AlgChoice::ReidMiller,
    ];
}

/// Default interleaved-lane count of the host's multi-chain walker.
/// Mirrors `listkit::walk::DEFAULT_LANES` (this crate sits below
/// `listkit` in the dependency graph, so the constant is mirrored
/// rather than imported; a workspace test pins the two together).
pub const DEFAULT_LANES: usize = 8;

/// Outstanding-miss depth the core can actually sustain (line-fill
/// buffers); lanes beyond this add bookkeeping, not parallelism.
const LANE_MISS_DEPTH: f64 = 10.0;

/// Fraction of a random-gather visit that is pure DRAM latency — the
/// part K interleaved lanes divide by K. The remaining ~15% (address
/// generation, the combine, bandwidth) is irreducible.
const LANE_LATENCY_FRACTION: f64 = 0.85;

/// Below this many vertices the working set (~12 bytes/vertex) is
/// cache-resident, latency is small, and interleaving has nothing to
/// hide: the discount does not apply.
pub const LANE_EFFECTIVE_MIN: usize = 1 << 16;

/// Residual per-visit cost of a multi-chain pointer chase walked with
/// `lanes` interleaved cursors, relative to the one-cursor walk
/// (Eq. (3)'s traversal term, reinterpreted: the C-90's vector
/// pipeline kept one element's gather in flight per pipeline slot; a
/// scalar host keeps one cache miss in flight per lane, so interleaved
/// visits cost ~`miss/K` instead of `miss`, down to a bandwidth
/// floor). `1.0` for single-lane walks and for lists small enough to
/// sit in cache.
pub fn lane_discount(n: usize, lanes: usize) -> f64 {
    if lanes <= 1 || n <= LANE_EFFECTIVE_MIN {
        return 1.0;
    }
    let k = (lanes as f64).min(LANE_MISS_DEPTH);
    (1.0 - LANE_LATENCY_FRACTION) + LANE_LATENCY_FRACTION / k
}

/// The lane count the model recommends for an `n`-vertex multi-chain
/// walk: 1 while the list is cache-resident (interleaving has nothing
/// to hide), the walker default above.
pub fn default_lanes(n: usize) -> usize {
    if n <= LANE_EFFECTIVE_MIN {
        1
    } else {
        DEFAULT_LANES
    }
}

/// Per-job fixed overhead of a parallel dispatch, in serial-element
/// units: split generation, reduced-list setup, thread-pool fan-out.
const HOST_JOB_OVERHEAD: f64 = 16_384.0;

/// Per-round fixed overhead of the round-based algorithms.
const HOST_ROUND_OVERHEAD: f64 = 2_048.0;

/// Coarse predicted cost of ranking an `n`-vertex list with `alg` on a
/// `p`-thread **scalar multicore host**, in *serial-element units* (one
/// unit = one pointer-chase visit of the serial ranker). This is the
/// dispatch model for the host backend, where — unlike on the paper's
/// vector machine, whose faithful model lives in
/// [`predict_with_phase2`] — there is no vectorization discount:
///
/// * Serial visits each vertex once on one thread: `n`.
/// * Reid-Miller is work-efficient but touches every vertex twice
///   (Phases 1 and 3) across `p` threads, plus per-job setup.
/// * Wyllie does `n log n` work; the random-mate algorithms inflate
///   work by their expected-touch constants (§2.3–2.4: ≈ `e·n` and
///   ≈ `2.7n`) with heavier per-touch costs — so none of the three ever
///   beats both Serial and Reid-Miller, matching the paper's Fig. 1
///   ordering.
pub fn predicted_cost(alg: AlgChoice, n: usize, p: usize) -> f64 {
    predicted_cost_op(alg, n, p, RANK_ELEM_BYTES)
}

/// Element width of a ranking job's payload (the `u64` rank), the unit
/// the serial-element coefficients were fitted at. Scan jobs over wider
/// operator carriers (affine maps, segmented pairs) scale the
/// per-element terms up from here.
pub const RANK_ELEM_BYTES: usize = 8;

/// [`predicted_cost`] for a *scan* job whose per-vertex value occupies
/// `elem_bytes` bytes — the op-kind dimension of the dispatch model.
/// Every visit moves the 8-byte link plus the value, so the
/// `n`-proportional terms scale by `(8 + elem_bytes) / 16` relative to
/// the rank baseline; fixed per-job/per-round overheads do not. Wider
/// operators therefore shift the serial/parallel crossover slightly
/// *down* (more memory traffic to amortize the parallel startup
/// against), which is exactly the measured direction. Assumes the
/// walker's default lane count; see [`predicted_cost_op_lanes`].
pub fn predicted_cost_op(alg: AlgChoice, n: usize, p: usize, elem_bytes: usize) -> f64 {
    predicted_cost_op_lanes(alg, n, p, elem_bytes, DEFAULT_LANES)
}

/// [`predicted_cost_op`] with an explicit interleaved-lane count — the
/// latency-hiding dimension of the dispatch model. Only Reid-Miller's
/// traversal term earns the [`lane_discount`]: its Phases 1 and 3 walk
/// many independent sublists, so a worker can keep `lanes` misses in
/// flight, while Serial chases a single chain (one outstanding miss,
/// structurally — no lane can help it) and the round-based algorithms
/// are already array-parallel passes the hardware pipelines on its
/// own. This is what moves the serial/Reid-Miller crossover *down* —
/// including onto one thread, where interleaving is the only
/// parallelism there is (the paper's actual C-90 insight: 2× work
/// beats 1× work when the traversal hides memory latency).
pub fn predicted_cost_op_lanes(
    alg: AlgChoice,
    n: usize,
    p: usize,
    elem_bytes: usize,
    lanes: usize,
) -> f64 {
    let nf = n as f64 * traffic_factor(elem_bytes);
    let pf = p.max(1) as f64;
    let rounds = if n > 2 { ((n - 1) as f64).log2().ceil().max(1.0) } else { 1.0 };
    match alg {
        // Serial pointer-chasing cannot use extra processors — or
        // extra lanes: one chain has one cursor.
        AlgChoice::Serial => nf,
        AlgChoice::Wyllie => 1.2 * nf * rounds / pf + rounds * HOST_ROUND_OVERHEAD,
        AlgChoice::MillerReif => {
            // ≈ 4n total touches (Σ (3/4)^k), ~1.3 units per touch
            // (coin, gather, conditional splice).
            4.0 * 1.3 * nf / pf + rounds * HOST_ROUND_OVERHEAD
        }
        AlgChoice::AndersonMiller => {
            // ≈ 2.7n expected touches, ~1.8 units each (queue upkeep).
            2.7 * 1.8 * nf / pf + rounds * HOST_ROUND_OVERHEAD
        }
        AlgChoice::ReidMiller => {
            // 2 visits per vertex with a small constant for the
            // boundary-bitmap checks, spread over p threads, each
            // visit latency-discounted by the interleaved lanes.
            2.2 * nf * lane_discount(n, lanes) / pf + HOST_JOB_OVERHEAD
        }
    }
}

/// Memory traffic of one visit relative to the rank baseline: 8 bytes
/// of link plus `elem_bytes` of value, over the baseline's 8 + 8.
fn traffic_factor(elem_bytes: usize) -> f64 {
    (8.0 + elem_bytes.max(1) as f64) / (8.0 + RANK_ELEM_BYTES as f64)
}

/// The cheapest algorithm for an `n`-vertex ranking job on a `p`-thread
/// host, by [`predicted_cost`]: Serial below the break-even point,
/// Reid-Miller above it. With the walker's default lanes the break-even
/// exists even at `p = 1`: on large random-layout lists the K-lane
/// interleaved traversal hides enough DRAM latency that Reid-Miller's
/// 2× work beats the serial chain's one-outstanding-miss walk — the
/// paper's C-90 insight transplanted to memory-level parallelism.
/// Wyllie and the random-mate algorithms are work-inefficient and
/// never win, mirroring Fig. 1.
pub fn predict_best(n: usize, p: usize) -> AlgChoice {
    predict_best_op(n, p, RANK_ELEM_BYTES)
}

/// The cheapest algorithm for an `n`-vertex **scan** job carrying
/// `elem_bytes`-byte values on a `p`-thread host, by
/// [`predicted_cost_op`] — the op-aware entry the engine planner's
/// prior keys on. Assumes the walker's default lane count.
pub fn predict_best_op(n: usize, p: usize, elem_bytes: usize) -> AlgChoice {
    predict_best_op_lanes(n, p, elem_bytes, DEFAULT_LANES)
}

/// [`predict_best_op`] with an explicit lane count, so a caller that
/// pins the walker to `lanes` (e.g. `rankd --lanes`) gets a prior
/// consistent with how the job will actually run — a single-lane pin
/// restores the old "Serial always wins on one thread" rule.
pub fn predict_best_op_lanes(n: usize, p: usize, elem_bytes: usize, lanes: usize) -> AlgChoice {
    let mut best = AlgChoice::Serial;
    let mut best_cost = f64::INFINITY;
    for alg in AlgChoice::ALL {
        let cost = predicted_cost_op_lanes(alg, n, p, elem_bytes, lanes);
        if cost < best_cost {
            best = alg;
            best_cost = cost;
        }
    }
    best
}

/// Per-shard fixed overhead of the shard-parallel path, in
/// serial-element units: fragment discovery, local-list assembly and
/// task spawn for one shard.
const HOST_SHARD_OVERHEAD: f64 = 4_096.0;

/// Cost of one *streaming* pass over a vertex (build, broadcast),
/// relative to the serial ranker's random-gather visit that defines one
/// serial-element unit: sequential reads/writes run at DRAM bandwidth
/// while the unit-defining gather eats a full miss latency.
/// (Recalibrated down from 0.35 when the lane discount landed: with
/// interleaved gathers costing ~miss/K, pricing a hardware-prefetched
/// stream at a third of a *full* miss was inconsistent — a stream
/// moves ~16 bytes/vertex at bandwidth, roughly an eighth of the
/// latency-bound visit.)
const SHARD_STREAM_PASS: f64 = 0.12;

/// Cost of the shard-local pointer-chase visit: still a chase, but
/// confined to a shard sized to the per-worker budget, so the link
/// array is cache-resident rather than gathering across the whole list.
const SHARD_LOCAL_VISIT: f64 = 0.6;

/// Coarse predicted cost of ranking an `n`-vertex list with the
/// shard-parallel path (`listkit::sharded`) on a `p`-thread host, in
/// serial-element units. `shard_size` is the per-worker vertex budget
/// and `fragments` the contracted boundary list's length (the number of
/// maximal in-shard runs — `n / block` for a blocked layout, ≈ `n` for
/// a random permutation):
///
/// * build + broadcast: one *streaming* pass each over every vertex
///   (sequential memory order — cheaper per element than a gather),
///   spread over `p` threads;
/// * shard-local rank: one pointer-chase pass confined to a
///   cache-resident shard (discounted accordingly);
/// * stitch: a serial scan of the contracted list — the term that
///   makes fragment-heavy topologies expensive, exactly as measured.
///
/// Assumes the walker's default lane count for the shard-local walk;
/// see [`predicted_sharded_cost_lanes`].
pub fn predicted_sharded_cost(n: usize, shard_size: usize, fragments: usize, p: usize) -> f64 {
    predicted_sharded_cost_lanes(n, shard_size, fragments, p, DEFAULT_LANES)
}

/// [`predicted_sharded_cost`] with an explicit lane count: the
/// shard-local fragment walk is a multi-chain chase (one chain per
/// fragment), so it earns the [`lane_discount`] — keyed on the *shard*
/// size, not `n`, because that is the walk's working set (a shard
/// sized under the cache budget was already cheap; lanes help the
/// bigger-than-cache shards).
pub fn predicted_sharded_cost_lanes(
    n: usize,
    shard_size: usize,
    fragments: usize,
    p: usize,
    lanes: usize,
) -> f64 {
    let nf = n as f64;
    let pf = p.max(1) as f64;
    let shard_size = shard_size.max(1);
    let shards = n.div_ceil(shard_size) as f64;
    let streaming = 2.0 * SHARD_STREAM_PASS * nf / pf; // build + broadcast
    let local_rank = SHARD_LOCAL_VISIT * lane_discount(shard_size.min(n), lanes) * nf / pf;
    let stitch = fragments as f64;
    streaming + local_rank + stitch + HOST_SHARD_OVERHEAD * shards / pf + HOST_JOB_OVERHEAD
}

/// Serial cost per contracted-list row of *re-assembling* a patched
/// boundary table (copy the row, binary-search the exit's head list):
/// streaming work over a compact array, a fraction of the
/// unit-defining gather — but serial, which is what makes
/// fragment-heavy topologies fall back to a full rebuild.
const PATCH_ROW_COST: f64 = 0.25;

/// Coarse predicted cost of **building** the sharded decomposition of
/// an `n`-vertex list (no query work), in serial-element units: one
/// streaming pass to find fragment heads, one shard-confined
/// pointer-chase pass to walk the fragments, one streaming pass to
/// assemble the boundary table, plus per-shard spawn overhead. This is
/// the "from scratch" side of the dynamic-list maintenance decision.
pub fn predicted_rebuild_cost_lanes(n: usize, shard_size: usize, p: usize, lanes: usize) -> f64 {
    let nf = n as f64;
    let pf = p.max(1) as f64;
    let shard_size = shard_size.max(1);
    let shards = n.div_ceil(shard_size) as f64;
    let chase = SHARD_LOCAL_VISIT * lane_discount(shard_size.min(n), lanes) * nf / pf;
    2.0 * SHARD_STREAM_PASS * nf / pf + chase + HOST_SHARD_OVERHEAD * shards / pf
}

/// Coarse predicted cost of **patching** an existing sharded
/// decomposition after a mutation that dirtied `dirty` of its shards:
/// the dirty shards pay the full per-vertex build cost, every clean
/// shard is reused by reference, and the contracted list is
/// re-assembled serially at `PATCH_ROW_COST` per fragment — the term
/// that makes boundary-heavy topologies prefer a full rebuild no
/// matter how few shards are dirty.
pub fn predicted_patch_cost_lanes(
    n: usize,
    shard_size: usize,
    dirty: usize,
    fragments: usize,
    p: usize,
    lanes: usize,
) -> f64 {
    let pf = p.max(1) as f64;
    let shard_size = shard_size.max(1);
    let dv = (dirty * shard_size).min(n) as f64;
    let chase = SHARD_LOCAL_VISIT * lane_discount(shard_size.min(n), lanes) * dv / pf;
    2.0 * SHARD_STREAM_PASS * dv / pf
        + chase
        + HOST_SHARD_OVERHEAD * dirty as f64 / pf
        + PATCH_ROW_COST * fragments as f64
}

/// Required predicted savings before a patch is worth dispatching: the
/// patch path carries bookkeeping a rebuild doesn't (dirty-set upkeep,
/// reused-shard re-offsetting, the artifact swap), so near break-even
/// the simple full rebuild is the better engineering choice. A patch
/// must come in below this fraction of the rebuild prediction.
const PATCH_MIN_SAVINGS: f64 = 0.85;

/// The maintenance decision prior: `true` when patching `dirty` shards
/// of an `n`-vertex decomposition with `fragments` contracted rows is
/// predicted at least `PATCH_MIN_SAVINGS`-cheaper than rebuilding it
/// from scratch. Low dirty fractions on locality-friendly topologies
/// go incremental; high dirty fractions — and fragment-heavy
/// topologies, whose serial re-assembly swamps the saved shard walks —
/// fall back.
pub fn predict_patch(
    n: usize,
    shard_size: usize,
    fragments: usize,
    dirty: usize,
    p: usize,
    lanes: usize,
) -> bool {
    predicted_patch_cost_lanes(n, shard_size, dirty, fragments, p, lanes)
        < PATCH_MIN_SAVINGS * predicted_rebuild_cost_lanes(n, shard_size, p, lanes)
}

/// Balanced shard size for an `n`-vertex list under a per-worker budget
/// of `budget` vertices, on a `p`-thread host: take the smallest shard
/// count that respects the budget, round it up to a multiple of `p`,
/// and size shards for that count. The returned size never exceeds the
/// budget. Because callers re-derive the count as `n.div_ceil(size)`,
/// integer granularity can land the *actual* count slightly below the
/// rounded target on small `n`; in the regime sharding exists for
/// (`n ≫ p · budget`-granularity) the count comes out an exact
/// multiple of `p`, so threads start evenly loaded.
pub fn shard_size_for(n: usize, budget: usize, p: usize) -> usize {
    let budget = budget.max(1);
    if n <= budget {
        return n.max(1);
    }
    let mut shards = n.div_ceil(budget);
    let p = p.max(1);
    shards = shards.div_ceil(p) * p;
    n.div_ceil(shards).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs() -> ModelCoeffs {
        ModelCoeffs::c90_scan()
    }

    fn predict1(n: usize, m: usize, s1: f64) -> Prediction {
        let c = coeffs();
        let p2 = (phase2_serial(&c, m + 1), Phase2Choice::Serial);
        predict_with_phase2(&c, n, m, s1, 1, 1.0, 1.0, p2)
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = predict1(10_000, 199, 25.0);
        let sum = p.init + p.phase1 + p.findsub + p.phase2 + p.phase3 + p.restore;
        assert!((sum - p.total).abs() < 1e-9);
        assert!(p.total > 0.0);
    }

    #[test]
    fn traversal_dominates_for_long_lists() {
        let p = predict1(1_000_000, 20_000, 25.0);
        assert!(p.phase1 + p.phase3 > 0.6 * p.total);
    }

    #[test]
    fn per_vertex_cost_approaches_combined_a() {
        // Asymptotically the model approaches a1 + a3 = 8 cycles/vertex
        // (Eq. 5's leading term) plus overheads. With these *fixed*
        // (untuned) parameters the overhang is larger than at the tuned
        // optimum (the tuner test pins that one down to < 10.5).
        let n = 4_000_000;
        let m = n / 60;
        let p = predict1(n, m, 30.0);
        let per_vertex = p.total / n as f64;
        assert!(
            per_vertex > 8.0 && per_vertex < 15.0,
            "per-vertex {per_vertex:.2} should be somewhat above 8"
        );
    }

    #[test]
    fn more_processors_reduce_time() {
        let c = coeffs();
        let p2 = (phase2_serial(&c, 20_000), Phase2Choice::Serial);
        let t1 = predict_with_phase2(&c, 1_000_000, 19_999, 30.0, 1, 1.0, 1.0, p2).total;
        let t8 = predict_with_phase2(&c, 1_000_000, 19_999, 30.0, 8, 1.19, 1.0, p2).total;
        assert!(t8 < t1 / 4.0, "8 CPUs should be ≥ 4× faster: {t1} vs {t8}");
        assert!(t8 > t1 / 8.0, "contention and startups forbid perfect speedup");
    }

    #[test]
    fn wyllie_beats_serial_on_moderate_lists_only() {
        let c = coeffs();
        // Moderate: a few hundred vertices.
        assert!(phase2_wyllie(&c, 256, 1.0, 1.0) < phase2_serial(&c, 256));
        // Long: log factor catches up.
        assert!(phase2_wyllie(&c, 100_000, 1.0, 1.0) > phase2_serial(&c, 100_000));
        // Trivial list.
        assert_eq!(phase2_wyllie(&c, 1, 1.0, 1.0), 0.0);
    }

    #[test]
    fn eq5_overestimates_eq3() {
        // Paper §4.4: "Eq. (3) accurately predicts and Eq. (5) over
        // estimates the actual execution time."
        let (n, m, s1) = (100_000usize, 2_500usize, 28.0);
        let p = predict1(n, m, s1);
        let e5 = eq5_estimate(n as f64, m as f64, s1, p.l1 as f64);
        assert!(e5 > p.total, "Eq5 ({e5:.0}) should over-estimate Eq3 ({:.0})", p.total);
        // ...but not absurdly (same order).
        assert!(e5 < 2.0 * p.total);
    }

    #[test]
    fn predict_best_dispatches_by_size() {
        // Tiny lists: serial wins (no startup costs to amortize).
        assert_eq!(predict_best(100, 4), AlgChoice::Serial);
        assert_eq!(predict_best(1000, 4), AlgChoice::Serial);
        // Large lists on a parallel machine: Reid-Miller wins.
        assert_eq!(predict_best(1_000_000, 4), AlgChoice::ReidMiller);
        assert_eq!(predict_best(10_000_000, 8), AlgChoice::ReidMiller);
        // On one thread, small lists stay serial (cache-resident, no
        // latency for lanes to hide, and nothing amortizes Reid-
        // Miller's 2× work)...
        for n in [100usize, 10_000, LANE_EFFECTIVE_MIN] {
            assert_eq!(predict_best(n, 1), AlgChoice::Serial, "n = {n}");
        }
        // ...but large lists flip to Reid-Miller even at p = 1: the
        // K-lane interleaved traversal hides DRAM latency the serial
        // chain structurally cannot (the paper's C-90 story).
        for n in [1_000_000usize, 100_000_000] {
            assert_eq!(predict_best(n, 1), AlgChoice::ReidMiller, "n = {n}");
        }
        // With lanes forced to 1 the old single-thread rule returns.
        for n in [1_000_000usize, 100_000_000] {
            let serial = predicted_cost_op_lanes(AlgChoice::Serial, n, 1, 8, 1);
            let rm = predicted_cost_op_lanes(AlgChoice::ReidMiller, n, 1, 8, 1);
            assert!(serial < rm, "n = {n}: single-lane RM must not beat serial on one thread");
        }
    }

    #[test]
    fn lane_discount_shape() {
        // No discount for single-lane walks or cache-resident lists.
        assert_eq!(lane_discount(1 << 24, 1), 1.0);
        assert_eq!(lane_discount(LANE_EFFECTIVE_MIN, 8), 1.0);
        // Monotone in lanes, floored by the bandwidth fraction.
        let d4 = lane_discount(1 << 24, 4);
        let d8 = lane_discount(1 << 24, 8);
        let d64 = lane_discount(1 << 24, 64);
        assert!(d4 > d8 && d8 > d64);
        assert!(d64 >= 1.0 - LANE_LATENCY_FRACTION, "floor: {d64}");
        // Saturates at the miss-buffer depth.
        assert_eq!(lane_discount(1 << 24, 16), lane_discount(1 << 24, 32));
        // The model's recommended lane count follows the same split.
        assert_eq!(default_lanes(1000), 1);
        assert_eq!(default_lanes(1 << 24), DEFAULT_LANES);
    }

    #[test]
    fn op_width_scales_cost_but_keeps_ordering() {
        // An 8-byte scan is exactly the rank baseline.
        for alg in AlgChoice::ALL {
            assert_eq!(predicted_cost_op(alg, 50_000, 4, 8), predicted_cost(alg, 50_000, 4));
        }
        // Wider values (16-byte affine maps, 24-byte segmented pairs)
        // cost strictly more, and the crossover moves down, never up:
        // any n the 8-byte model sends to Reid-Miller, the wider model
        // must too.
        let n = 2_000_000;
        assert!(
            predicted_cost_op(AlgChoice::Serial, n, 4, 16)
                > predicted_cost_op(AlgChoice::Serial, n, 4, 8)
        );
        for n in [1000usize, 100_000, 1_000_000] {
            if predict_best_op(n, 4, 8) == AlgChoice::ReidMiller {
                assert_eq!(predict_best_op(n, 4, 16), AlgChoice::ReidMiller, "n = {n}");
            }
        }
        // One thread, big list: Reid-Miller wins at every width (the
        // lane discount applies to the traversal term regardless of
        // how wide the values are).
        for bytes in [8usize, 16, 24] {
            assert_eq!(predict_best_op(10_000_000, 1, bytes), AlgChoice::ReidMiller);
        }
    }

    #[test]
    fn predicted_cost_sane() {
        // Work-inefficient algorithms cost more than Reid-Miller at scale.
        let n = 1_000_000;
        let rm = predicted_cost(AlgChoice::ReidMiller, n, 4);
        assert!(predicted_cost(AlgChoice::Wyllie, n, 4) > rm);
        assert!(predicted_cost(AlgChoice::MillerReif, n, 4) > rm);
        assert!(predicted_cost(AlgChoice::AndersonMiller, n, 4) > rm);
        // Costs are positive and monotone in n.
        for alg in AlgChoice::ALL {
            assert!(predicted_cost(alg, 1000, 1) > 0.0);
            assert!(predicted_cost(alg, 100_000, 1) > predicted_cost(alg, 1000, 1));
        }
        // More threads help every parallel algorithm.
        assert!(
            predicted_cost(AlgChoice::ReidMiller, n, 8)
                < predicted_cost(AlgChoice::ReidMiller, n, 2)
        );
    }

    #[test]
    fn sharded_cost_beats_monolithic_on_local_topologies() {
        // A huge blocked-layout list (few fragments) should be cheaper
        // sharded than monolithic Reid-Miller; a random permutation
        // (≈ n fragments) pays a linear serial stitch and should not.
        let (n, p) = (100_000_000usize, 8usize);
        let shard = 1 << 21;
        let mono = predicted_cost(AlgChoice::ReidMiller, n, p);
        let local = predicted_sharded_cost(n, shard, n / 4096, p);
        let scattered = predicted_sharded_cost(n, shard, n, p);
        assert!(local < mono, "local: sharded {local:.0} vs monolithic {mono:.0}");
        assert!(scattered > local, "fragment count must drive the stitch term");
    }

    #[test]
    fn shard_size_respects_budget_and_balances() {
        // Fits the budget outright: one shard of exactly n.
        assert_eq!(shard_size_for(1000, 4096, 8), 1000);
        // Above budget in the real sharding regime: size stays within
        // the budget and the count callers re-derive from it
        // (`n.div_ceil(size)` — what `ShardedList::build` does) is an
        // exact multiple of p.
        let (n, budget, p) = (10_000_000usize, (1usize << 21) + 13, 6usize);
        let size = shard_size_for(n, budget, p);
        assert!(size <= budget);
        let shards = n.div_ceil(size);
        assert_eq!(shards % p, 0, "{shards} shards not a multiple of {p}");
        assert!(size * shards >= n && (size - 1) * shards < n, "unbalanced: {size} x {shards}");
        // The budget cap holds even at small n, where integer
        // granularity may undercut the multiple-of-p target
        // (shard_size_for(13, 4, 3) → size 3 → 5 shards, not 6).
        for (n, budget, p) in [(13usize, 4usize, 3usize), (100, 7, 3), (17, 2, 8)] {
            let size = shard_size_for(n, budget, p);
            assert!((1..=budget).contains(&size), "n={n}: size {size} breaks the budget");
        }
        // Degenerate inputs normalize instead of panicking.
        assert_eq!(shard_size_for(1, 0, 0), 1);
    }

    #[test]
    fn patch_beats_rebuild_only_at_low_dirty_fractions() {
        // The paper-scale dynamic case: a 2^22-vertex blocked-layout
        // list, 64 shards of 2^16, few fragments.
        let (n, shard, p, lanes) = (1usize << 22, 1usize << 16, 8usize, 8usize);
        let shards = n / shard;
        let fragments = n / 4096; // blocked topology: long runs
                                  // ≤ 5% dirty: incremental must win.
        assert!(predict_patch(n, shard, fragments, shards / 20, p, lanes));
        assert!(predict_patch(n, shard, fragments, 1, p, lanes));
        // Most shards dirty: the patch pays nearly the full build plus
        // the serial re-assembly — fall back.
        assert!(!predict_patch(n, shard, fragments, shards, p, lanes));
        assert!(!predict_patch(n, shard, fragments, (9 * shards) / 10, p, lanes));
        // Monotone in dirty count.
        let costs: Vec<f64> = (0..=shards)
            .map(|d| predicted_patch_cost_lanes(n, shard, d, fragments, p, lanes))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
        // A fragment-heavy (random-permutation) topology pays a serial
        // re-assembly of ~n rows: full rebuild wins even at 1 dirty
        // shard.
        assert!(!predict_patch(n, shard, n, 1, p, lanes));
    }

    #[test]
    fn rebuild_cost_is_the_build_share_of_the_sharded_model() {
        // Building is strictly cheaper than building-and-querying.
        let (n, shard, p) = (1usize << 22, 1usize << 16, 8usize);
        let build = predicted_rebuild_cost_lanes(n, shard, p, DEFAULT_LANES);
        let full = predicted_sharded_cost(n, shard, n / 4096, p);
        assert!(build > 0.0 && build < full);
    }

    #[test]
    fn contention_increases_cost() {
        let c = coeffs();
        let p2 = (phase2_serial(&c, 200), Phase2Choice::Serial);
        let base = predict_with_phase2(&c, 10_000, 199, 25.0, 2, 1.0, 1.0, p2).total;
        let cont = predict_with_phase2(&c, 10_000, 199, 25.0, 2, 1.2, 1.0, p2).total;
        assert!(cont > base);
    }
}
