//! Simple linear regression `y = te·x + t0`.
//!
//! The paper measured its loop coefficients by timing each vectorized
//! loop at many vector lengths and fitting the Hockney line. We use the
//! same machinery to (a) verify that the simulator's composite kernels
//! land on the published coefficients and (b) fit host-backend timings.

/// Result of a least-squares line fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Slope (per-element cost, `te`).
    pub te: f64,
    /// Intercept (startup, `t0`).
    pub t0: f64,
    /// Coefficient of determination (1 = perfect).
    pub r2: f64,
}

/// Fit `y = te·x + t0` to the samples.
///
/// # Panics
/// Panics with fewer than two samples or zero variance in `x`.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two samples");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must vary");
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let te = sxy / sxx;
    let t0 = my - te * mx;
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (te * x + t0);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    LineFit { te, t0, r2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.4 * x + 35.0).collect();
        let fit = fit_line(&xs, &ys);
        assert!((fit.te - 3.4).abs() < 1e-9);
        assert!((fit.t0 - 35.0).abs() < 1e-6);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 7.0 + if i % 3 == 0 { 1.0 } else { -0.5 })
            .collect();
        let fit = fit_line(&xs, &ys);
        assert!((fit.te - 2.0).abs() < 0.02);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn constant_y_has_unit_r2() {
        let fit = fit_line(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert!((fit.te - 0.0).abs() < 1e-12);
        assert!((fit.t0 - 5.0).abs() < 1e-12);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        let _ = fit_line(&[1.0], &[2.0]);
    }
}
