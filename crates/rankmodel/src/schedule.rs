//! The load-balancing schedule (paper §4.3, Eq. 4).
//!
//! `S_i` is the cumulative number of links each live sublist has
//! traversed before the i-th pack. Setting `∂T/∂S_i = 0` in Eq. (3)
//! yields
//!
//! ```text
//! S_{i+1} = S_i + (g(S_{i-1}) − g(S_i)) / ((m/n)·g(S_i)) − c/a
//! ```
//!
//! so the whole schedule follows from `S_1`. Steps spread out over time
//! ("the rate sublists complete slows down"), and a larger pack cost
//! `c/a` pushes packs later — both visible in Fig. 10.

use crate::expdist;

/// A pack schedule: strictly increasing traversal counts `S_1 < … < S_l`,
/// with the implicit `S_0 = 0` excluded, plus the final traversal depth
/// `s_final` (the expected longest sublist, where the phase ends).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Pack points `S_1 … S_l`.
    pub points: Vec<f64>,
    /// Expected traversal depth at which the phase completes
    /// (`≈ (n/m)·ln(2m+2)`).
    pub s_final: f64,
}

impl Schedule {
    /// Build the schedule from `S_1` via the Eq. (4) recurrence.
    ///
    /// Iteration stops when the expected number of live sublists
    /// `g(S_i)` drops below `stop_g` (default 1.0: less than one sublist
    /// expected to survive — packing again cannot pay) or when `S`
    /// reaches the expected longest sublist.
    pub fn from_s1(n: f64, m: f64, s1: f64, c_over_a: f64, stop_g: f64) -> Self {
        assert!(s1 > 0.0, "S_1 must be positive");
        let s_final = expdist::expected_longest(n, m);
        let mut points = Vec::new();
        let mut s_prev = 0.0f64;
        let mut s_cur = s1.min(s_final);
        points.push(s_cur);
        // Hard cap: schedules longer than this indicate degenerate
        // parameters and would never be competitive anyway.
        const MAX_STEPS: usize = 10_000;
        while points.len() < MAX_STEPS {
            let g_prev = expdist::g(s_prev, n, m);
            let g_cur = expdist::g(s_cur, n, m);
            if g_cur <= stop_g || s_cur >= s_final {
                break;
            }
            let step = (g_prev - g_cur) / ((m / n) * g_cur) - c_over_a;
            // Eq. (4) can propose a non-positive step when pack cost
            // dominates; clamp to keep the schedule strictly increasing
            // (equivalent to merging two adjacent packs).
            let next = s_cur + step.max(1.0);
            s_prev = s_cur;
            s_cur = next.min(s_final);
            points.push(s_cur);
            if s_cur >= s_final {
                break;
            }
        }
        Self { points, s_final }
    }

    /// Number of load balances `l`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the schedule has no pack points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Find `S_1` such that the schedule has exactly `l` pack points
    /// (bisection on `S_1`; used to reproduce Fig. 10's `l = 11`).
    ///
    /// Returns `None` if no `S_1` in `(1, s_final)` yields exactly `l`.
    pub fn with_length(n: f64, m: f64, l: usize, c_over_a: f64, stop_g: f64) -> Option<Self> {
        // Larger S_1 → fewer steps (monotone), so bisect.
        let s_final = expdist::expected_longest(n, m);
        let count = |s1: f64| Self::from_s1(n, m, s1, c_over_a, stop_g).len();
        let (mut lo, mut hi) = (1.0f64, s_final);
        if count(lo) < l || count(hi) > l {
            return None;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if count(mid) > l {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let sched = Self::from_s1(n, m, hi, c_over_a, stop_g);
        (sched.len() == l).then_some(sched)
    }

    /// The segment boundaries including `S_0 = 0` and the final depth:
    /// `[0, S_1, …, S_l, s_final]` (deduplicated at the end).
    pub fn segments(&self) -> Vec<f64> {
        let mut seg = Vec::with_capacity(self.points.len() + 2);
        seg.push(0.0);
        seg.extend_from_slice(&self.points);
        if seg.last().copied().unwrap_or(0.0) < self.s_final {
            seg.push(self.s_final);
        }
        seg
    }

    /// Integer traversal counts for an actual implementation (strictly
    /// increasing, ≥ 1 apart).
    pub fn integer_points(&self) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::with_capacity(self.points.len());
        let mut prev = 0usize;
        for &p in &self.points {
            let q = (p.round() as usize).max(prev + 1);
            out.push(q);
            prev = q;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 10_000.0;
    const M: f64 = 199.0;
    // Combined scan coefficients: c/a = 15.4/8.0.
    const C_OVER_A: f64 = 15.4 / 8.0;

    #[test]
    fn schedule_is_strictly_increasing() {
        let s = Schedule::from_s1(N, M, 30.0, C_OVER_A, 1.0);
        assert!(s.len() >= 2);
        for w in s.points.windows(2) {
            assert!(w[1] > w[0], "schedule must increase: {:?}", s.points);
        }
    }

    #[test]
    fn steps_widen_over_time() {
        // Fig. 10: "the S_i's become increasingly further apart for
        // larger i's". Check the last gap exceeds the first.
        let s = Schedule::from_s1(N, M, 25.0, C_OVER_A, 1.0);
        assert!(s.len() >= 4, "need several steps, got {}", s.len());
        let first_gap = s.points[1] - s.points[0];
        let last_gap = s.points[s.len() - 1] - s.points[s.len() - 2];
        assert!(
            last_gap > first_gap,
            "gaps should widen: first {first_gap:.1}, last {last_gap:.1}"
        );
    }

    #[test]
    fn larger_s1_gives_fewer_packs() {
        let a = Schedule::from_s1(N, M, 15.0, C_OVER_A, 1.0).len();
        let b = Schedule::from_s1(N, M, 60.0, C_OVER_A, 1.0).len();
        assert!(a > b, "S1=15 gives {a} packs, S1=60 gives {b}");
    }

    #[test]
    fn fig10_eleven_balances() {
        // Fig. 10 shows l = 11 for n = 10_000, m = 199.
        let s = Schedule::with_length(N, M, 11, C_OVER_A, 1.0).expect("an S_1 with l = 11 exists");
        assert_eq!(s.len(), 11);
        // All points within the traversal range.
        assert!(s.points[0] > 0.0);
        assert!(*s.points.last().unwrap() <= s.s_final + 1e-9);
    }

    #[test]
    fn higher_pack_cost_delays_early_packs() {
        // Paper: "If we increase c ... load balancing would occur less
        // frequently during the initial iterations."
        let cheap = Schedule::from_s1(N, M, 25.0, 0.5, 1.0);
        let dear = Schedule::from_s1(N, M, 25.0, 8.0, 1.0);
        // Same S1; with costlier packs the *second* point lands earlier
        // relative to cheap? No: the recurrence subtracts c/a, delaying
        // growth — fewer, later packs overall.
        assert!(dear.len() >= cheap.len());
    }

    #[test]
    fn segments_cover_zero_to_final() {
        let s = Schedule::from_s1(N, M, 30.0, C_OVER_A, 1.0);
        let seg = s.segments();
        assert_eq!(seg[0], 0.0);
        assert!((seg.last().unwrap() - s.s_final).abs() < 1e-9);
        for w in seg.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn integer_points_strictly_increase() {
        let s = Schedule::from_s1(1000.0, 500.0, 1.2, 0.1, 1.0);
        let ip = s.integer_points();
        for w in ip.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ip[0] >= 1);
    }
}
