//! Parameter tuning (paper §4.4).
//!
//! "Our approach is to estimate the running time of the algorithm using
//! Eq. (3) for various values of m, S1 and n ... Then, for each value of
//! n we find values of m and S1 that minimize the running time ...
//! Finally, we fit functions to m vs. n and S1 vs. n. It appears that m
//! and S1 are approximately cubic polynomials of log n."
//!
//! [`Tuner::tune`] performs the grid minimization, choosing the Phase-2
//! strategy (serial / Wyllie / recursive) by cost — recursion memoized.
//! [`Tuner::fit_m_curve`] / [`Tuner::fit_s1_curve`] produce the cubic
//! polylog fits an implementation would ship.

use crate::coeffs::ModelCoeffs;
use crate::polyfit;
use crate::predict::{self, Phase2Choice, Prediction};
use std::collections::BTreeMap;

/// Tuning context: machine and minimization options.
#[derive(Clone, Copy, Debug)]
pub struct TunerOptions {
    /// Physical processors.
    pub procs: usize,
    /// Memory-contention factor on per-element costs (1.0 on one CPU).
    pub te_factor: f64,
    /// Schedule construction stops when `g(S) <= stop_g`.
    pub stop_g: f64,
    /// Lists no longer than this run serially outright.
    pub serial_cutoff: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        Self { procs: 1, te_factor: 1.0, stop_g: 1.0, serial_cutoff: 128 }
    }
}

impl TunerOptions {
    /// Options for `p` C90 CPUs (Table I contention calibration).
    pub fn c90(p: usize) -> Self {
        Self { procs: p, te_factor: 1.0 + 0.027 * (p as f64 - 1.0), ..Self::default() }
    }
}

/// Tuned parameters for one list length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedParams {
    /// List length.
    pub n: usize,
    /// Optimal split count (`m+1` sublists).
    pub m: usize,
    /// Optimal first load-balance point.
    pub s1: f64,
    /// Resulting Phase-1 balance count.
    pub l: usize,
    /// Phase-2 strategy at the optimum.
    pub phase2: Phase2Choice,
    /// Predicted total cycles.
    pub predicted: f64,
}

/// The minimizer, memoizing recursive Phase-2 tunings.
///
/// ```
/// let mut tuner = rankmodel::Tuner::c90_scan();
/// let p = tuner.tune(1_000_000);
/// assert!(p.m > 100 && p.m < 250_000);          // m ≪ n, m ≫ 1
/// assert!(p.predicted / 1_000_000.0 < 11.0);     // ≈ 8–10 cycles/vertex
/// ```
#[derive(Clone, Debug)]
pub struct Tuner {
    coeffs: ModelCoeffs,
    opts: TunerOptions,
    memo: BTreeMap<usize, TunedParams>,
}

impl Tuner {
    /// A tuner for the given coefficients and options.
    pub fn new(coeffs: ModelCoeffs, opts: TunerOptions) -> Self {
        Self { coeffs, opts, memo: BTreeMap::new() }
    }

    /// Convenience: 1-CPU C90 list scan.
    pub fn c90_scan() -> Self {
        Self::new(ModelCoeffs::c90_scan(), TunerOptions::default())
    }

    /// The options in use.
    pub fn options(&self) -> &TunerOptions {
        &self.opts
    }

    /// The coefficients in use.
    pub fn coeffs(&self) -> &ModelCoeffs {
        &self.coeffs
    }

    /// Best Phase-2 cost for a reduced list of `x` vertices.
    pub fn phase2_cost(&mut self, x: usize) -> (f64, Phase2Choice) {
        let serial = predict::phase2_serial(&self.coeffs, x);
        let wyllie =
            predict::phase2_wyllie(&self.coeffs, x, self.opts.procs as f64, self.opts.te_factor);
        let mut best = (serial, Phase2Choice::Serial);
        if wyllie < best.0 {
            best = (wyllie, Phase2Choice::Wyllie);
        }
        // Recursion pays only for reduced lists long enough to amortize
        // the fixed overheads.
        if x > 4096 {
            let rec = self.tune(x).predicted;
            if rec < best.0 {
                best = (rec, Phase2Choice::Recurse);
            }
        }
        best
    }

    /// Minimize predicted time over `(m, S1)` for list length `n`.
    pub fn tune(&mut self, n: usize) -> TunedParams {
        if let Some(&hit) = self.memo.get(&n) {
            return hit;
        }
        let result = self.tune_uncached(n);
        self.memo.insert(n, result);
        result
    }

    fn tune_uncached(&mut self, n: usize) -> TunedParams {
        if n <= self.opts.serial_cutoff.max(4) {
            // Tiny lists: the algorithm degenerates; model it as serial.
            let t = predict::phase2_serial(&self.coeffs, n);
            return TunedParams {
                n,
                m: 0,
                s1: 0.0,
                l: 0,
                phase2: Phase2Choice::Serial,
                predicted: t,
            };
        }
        let mut best: Option<(Prediction, f64)> = None;
        for m in m_candidates(n) {
            let (p2_cost, p2_choice) = self.phase2_cost(m + 1);
            let mean = n as f64 / m as f64;
            for frac in S1_FRACTIONS {
                let s1 = (frac * mean).max(1.0);
                let pred = predict::predict_with_phase2(
                    &self.coeffs,
                    n,
                    m,
                    s1,
                    self.opts.procs,
                    self.opts.te_factor,
                    self.opts.stop_g,
                    (p2_cost, p2_choice),
                );
                if best.as_ref().is_none_or(|(b, _)| pred.total < b.total) {
                    best = Some((pred, s1));
                }
            }
        }
        let (pred, s1) = best.expect("non-empty candidate grid");
        TunedParams {
            n,
            m: pred.m,
            s1,
            l: pred.l1,
            phase2: pred.phase2_choice,
            predicted: pred.total,
        }
    }

    /// Tune a range of lengths and fit `m(n)` as a cubic in `ln n`
    /// (coefficients lowest-order first).
    pub fn fit_m_curve(&mut self, ns: &[usize]) -> Vec<f64> {
        let xs: Vec<f64> = ns.iter().map(|&n| (n as f64).ln()).collect();
        let ys: Vec<f64> = ns.iter().map(|&n| self.tune(n).m as f64).collect();
        polyfit::polyfit(&xs, &ys, 3)
    }

    /// Fit `S1(n)` as a cubic in `ln n`.
    pub fn fit_s1_curve(&mut self, ns: &[usize]) -> Vec<f64> {
        let xs: Vec<f64> = ns.iter().map(|&n| (n as f64).ln()).collect();
        let ys: Vec<f64> = ns.iter().map(|&n| self.tune(n).s1).collect();
        polyfit::polyfit(&xs, &ys, 3)
    }

    /// Evaluate a fitted polylog curve at `n`, clamped to sane bounds.
    pub fn eval_curve(curve: &[f64], n: usize) -> f64 {
        polyfit::polyval(curve, (n as f64).ln()).max(1.0)
    }
}

/// Log-spaced `m` candidates between a small floor and `n/4`.
fn m_candidates(n: usize) -> Vec<usize> {
    let lo = 4.0f64;
    let hi = (n as f64 / 4.0).max(lo + 1.0);
    let steps = 28;
    let mut out: Vec<usize> = (0..=steps)
        .map(|i| {
            let t = i as f64 / steps as f64;
            (lo * (hi / lo).powf(t)).round() as usize
        })
        .collect();
    out.dedup();
    out
}

/// `S1` candidates as fractions of the mean sublist length `n/m`.
const S1_FRACTIONS: [f64; 12] = [0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0, 1.2, 1.5];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_m_grows_with_n() {
        let mut t = Tuner::c90_scan();
        let m4 = t.tune(10_000).m;
        let m6 = t.tune(1_000_000).m;
        assert!(m6 > m4, "m must grow with n: {m4} vs {m6}");
        assert!(m4 > 16, "m(10k) should be well above the floor: {m4}");
    }

    #[test]
    fn tuned_m_is_sublinear() {
        // m < n / log n keeps the algorithm work-efficient.
        let mut t = Tuner::c90_scan();
        for &n in &[10_000usize, 100_000, 1_000_000] {
            let m = t.tune(n).m as f64;
            let bound = n as f64 / (n as f64).log2() * 4.0;
            assert!(m < bound, "n={n}: m={m} too large (bound {bound})");
        }
    }

    #[test]
    fn asymptotic_cost_matches_paper() {
        // Paper: 7.4 cycles/vertex measured asymptotically on 1 CPU; the
        // model (which the paper says slightly over-predicts) should land
        // between 8 and 10 for very long lists.
        let mut t = Tuner::c90_scan();
        let n = 8_000_000;
        let per_vertex = t.tune(n).predicted / n as f64;
        assert!(per_vertex > 7.4 && per_vertex < 10.5, "per-vertex {per_vertex:.2}");
    }

    #[test]
    fn tiny_lists_fall_back_to_serial() {
        let mut t = Tuner::c90_scan();
        let p = t.tune(64);
        assert_eq!(p.phase2, Phase2Choice::Serial);
        assert_eq!(p.m, 0);
    }

    #[test]
    fn phase2_choice_progresses_with_size() {
        let mut t = Tuner::c90_scan();
        // Tiny reduced list → serial; moderate → Wyllie.
        let (_, c_small) = t.phase2_cost(8);
        assert_eq!(c_small, Phase2Choice::Serial);
        let (_, c_mid) = t.phase2_cost(400);
        assert_eq!(c_mid, Phase2Choice::Wyllie);
        // Very large → recursion beats both.
        let (_, c_big) = t.phase2_cost(500_000);
        assert_eq!(c_big, Phase2Choice::Recurse);
    }

    #[test]
    fn multiprocessor_tuning_is_faster() {
        let mut t1 = Tuner::new(ModelCoeffs::c90_scan(), TunerOptions::c90(1));
        let mut t8 = Tuner::new(ModelCoeffs::c90_scan(), TunerOptions::c90(8));
        let n = 2_000_000;
        let p1 = t1.tune(n).predicted;
        let p8 = t8.tune(n).predicted;
        let speedup = p1 / p8;
        assert!(
            speedup > 4.0 && speedup < 8.0,
            "8-CPU speedup {speedup:.2} should be substantial but sublinear"
        );
    }

    #[test]
    fn memoization_is_consistent() {
        let mut t = Tuner::c90_scan();
        let a = t.tune(50_000);
        let b = t.tune(50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn polylog_fits_are_usable() {
        let mut t = Tuner::c90_scan();
        let ns: Vec<usize> =
            [1usize, 2, 4, 8, 16, 32, 64, 128, 256].iter().map(|k| k * 8192).collect();
        let m_curve = t.fit_m_curve(&ns);
        let s1_curve = t.fit_s1_curve(&ns);
        assert_eq!(m_curve.len(), 4);
        // The fitted curve should reproduce tuned m within a factor ~2
        // at interpolated points (the paper: "within about two percent"
        // of the *runtime*, which is much flatter than m itself).
        for &n in &[20_000usize, 200_000, 1_500_000] {
            let fitted = Tuner::eval_curve(&m_curve, n);
            let tuned = t.tune(n).m as f64;
            let ratio = fitted / tuned;
            assert!(
                ratio > 0.4 && ratio < 2.5,
                "n={n}: fitted m {fitted:.0} vs tuned {tuned} (ratio {ratio:.2})"
            );
            assert!(Tuner::eval_curve(&s1_curve, n) >= 1.0);
        }
    }
}
