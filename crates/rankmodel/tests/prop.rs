//! Property-based tests for the analysis crate.

use proptest::prelude::*;
use rankmodel::coeffs::ModelCoeffs;
use rankmodel::expdist;
use rankmodel::polyfit;
use rankmodel::predict::{self, Phase2Choice};
use rankmodel::regress;
use rankmodel::schedule::Schedule;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn g_decreasing_and_bounded(n in 1000.0f64..1e7, m in 10.0f64..1e5, x1 in 0.0f64..1e4, x2 in 0.0f64..1e4) {
        prop_assume!(m < n);
        let (lo, hi) = (x1.min(x2), x1.max(x2));
        prop_assert!(expdist::g(lo, n, m) >= expdist::g(hi, n, m));
        prop_assert!(expdist::g(0.0, n, m) <= m + 1.0 + 1e-9);
        prop_assert!(expdist::g(hi, n, m) >= 0.0);
    }

    #[test]
    fn order_statistics_increase(n in 2000.0f64..1e6, m in 100usize..2000, j in 0usize..2000) {
        prop_assume!((m as f64) < n / 2.0);
        let j = j.min(m);
        let e = expdist::expected_jth_shortest(j, n, m as f64);
        prop_assert!(e > 0.0);
        if j > 0 {
            prop_assert!(e > expdist::expected_jth_shortest(j - 1, n, m as f64));
        }
        prop_assert!(e <= expdist::expected_longest(n, m as f64) + 1e-9);
    }

    #[test]
    fn sampled_lengths_partition(n in 10usize..5000, m_frac in 0.01f64..0.8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let m = ((n as f64 * m_frac) as usize).clamp(1, n - 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let lengths = expdist::sample_sorted_lengths(n, m, &mut rng);
        prop_assert_eq!(lengths.len(), m + 1);
        prop_assert_eq!(lengths.iter().sum::<usize>(), n);
        prop_assert!(lengths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn schedule_strictly_increasing_for_any_s1(
        n in 2000.0f64..1e6,
        m_frac in 0.005f64..0.2,
        s1_frac in 0.05f64..2.0,
        c_over_a in 0.1f64..5.0,
    ) {
        let m = (n * m_frac).max(10.0);
        let s1 = (s1_frac * n / m).max(1.0);
        let sched = Schedule::from_s1(n, m, s1, c_over_a, 1.0);
        prop_assert!(!sched.is_empty());
        for w in sched.points.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!(*sched.points.last().unwrap() <= sched.s_final + 1e-9);
        // Integer points stay strictly increasing too.
        let ip = sched.integer_points();
        prop_assert!(ip.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn prediction_breakdown_sums(n in 5_000usize..500_000, m_frac in 0.005f64..0.2, s1 in 1.0f64..200.0) {
        let m = ((n as f64 * m_frac) as usize).max(8);
        let c = ModelCoeffs::c90_scan();
        let p2 = (predict::phase2_serial(&c, m + 1), Phase2Choice::Serial);
        let p = predict::predict_with_phase2(&c, n, m, s1, 1, 1.0, 1.0, p2);
        let sum = p.init + p.phase1 + p.findsub + p.phase2 + p.phase3 + p.restore;
        prop_assert!((sum - p.total).abs() < 1e-6);
        prop_assert!(p.total > 0.0);
        // More processors never hurt (same params).
        let p8 = predict::predict_with_phase2(&c, n, m, s1, 8, 1.0, 1.0, p2);
        prop_assert!(p8.total <= p.total + 1e-6);
    }

    #[test]
    fn polyfit_recovers_exact_polynomials(coeffs in proptest::collection::vec(-10.0f64..10.0, 1..5)) {
        let deg = coeffs.len() - 1;
        let xs: Vec<f64> = (0..(2 * deg + 4)).map(|i| i as f64 * 0.5 - 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| polyfit::polyval(&coeffs, x)).collect();
        let fit = polyfit::polyfit(&xs, &ys, deg);
        for (f, t) in fit.iter().zip(&coeffs) {
            prop_assert!((f - t).abs() < 1e-5, "fit {:?} vs truth {:?}", fit, coeffs);
        }
    }

    #[test]
    fn regression_recovers_exact_lines(te in -100.0f64..100.0, t0 in -1000.0f64..1000.0) {
        let xs: Vec<f64> = (1..30).map(|i| i as f64 * 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| te * x + t0).collect();
        let fit = regress::fit_line(&xs, &ys);
        prop_assert!((fit.te - te).abs() < 1e-6);
        prop_assert!((fit.t0 - t0).abs() < 1e-4);
    }

    #[test]
    fn eq5_dominated_by_linear_term_for_large_n(m_frac in 0.01f64..0.05, s1 in 5.0f64..50.0) {
        let n = 8_000_000f64;
        let m = n * m_frac;
        let e5 = predict::eq5_estimate(n, m, s1, 20.0);
        prop_assert!(e5 >= 8.0 * n);
        prop_assert!(e5 <= 8.0 * n + 62.0 * (n / m) * m.ln() + (8.0 * s1 + 96.0) * (m + 1.0) + 2150.0 * 20.0 + 2750.0 + 1.0);
    }
}
