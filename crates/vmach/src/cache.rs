//! A set-associative LRU cache simulator.
//!
//! Used by the workstation model to decide mechanistically whether a
//! list traversal runs out of cache (Table I's "Cache" column) or out of
//! memory ("Memory"): the linked list's memory layout — not just its
//! size — determines the miss ratio, which is exactly the point the
//! paper makes about workstations being poor at pointer chasing.

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// The DEC 3000/600's off-chip cache: 2 MB, 32-byte lines, direct
    /// mapped (the Alpha 21064 board cache).
    pub fn alpha_board_cache() -> Self {
        Self { size_bytes: 2 << 20, line_bytes: 32, ways: 1 }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// The simulator. Tags per set are kept in MRU-first order; `u64::MAX`
/// marks an invalid way.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` holds up to `ways` tags, most recently used first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl CacheSim {
    /// Build a simulator for the given geometry.
    ///
    /// # Panics
    /// Panics unless line size and set count are powers of two and the
    /// geometry is consistent.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways >= 1);
        let n_sets = config.n_sets();
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        assert_eq!(
            n_sets * config.line_bytes * config.ways,
            config.size_bytes,
            "inconsistent cache geometry"
        );
        Self {
            config,
            sets: vec![Vec::new(); n_sets],
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access a byte address; returns `true` on hit. Counted.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tags = &mut self.sets[set];
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            // Move to MRU.
            let t = tags.remove(pos);
            tags.insert(0, t);
            self.stats.hits += 1;
            true
        } else {
            if tags.len() == self.config.ways {
                tags.pop(); // evict LRU
            }
            tags.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Touch an address without counting (cache warming).
    pub fn warm(&mut self, addr: u64) {
        let saved = self.stats;
        self.access(addr);
        self.stats = saved;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 16-byte lines = 128 bytes.
        CacheSim::new(CacheConfig { size_bytes: 128, line_bytes: 16, ways: 2 })
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(8)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with (line & 3) == 0: addresses 0, 64, 128...
        c.access(0); // miss
        c.access(64); // miss, set 0 now [64, 0]
        c.access(0); // hit, MRU order [0, 64]
        c.access(128); // miss, evicts 64
        assert!(c.access(0), "0 must have survived");
        assert!(!c.access(64), "64 must have been evicted");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = CacheSim::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 1 });
        // 4 sets; addresses 0 and 64 collide in set 0.
        c.access(0);
        c.access(64);
        assert!(!c.access(0), "direct-mapped conflict must evict");
    }

    #[test]
    fn warm_does_not_count() {
        let mut c = tiny();
        c.warm(0);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0), "warmed line must hit");
    }

    #[test]
    fn working_set_behavior() {
        // A working set that fits is all-hits when re-traversed; one that
        // doesn't fit (direct-mapped, wrap-around) keeps missing.
        let mut c = CacheSim::new(CacheConfig { size_bytes: 1024, line_bytes: 16, ways: 1 });
        for addr in (0..512u64).step_by(16) {
            c.warm(addr);
        }
        for addr in (0..512u64).step_by(16) {
            assert!(c.access(addr));
        }
        c.reset();
        // 4 KB working set in a 1 KB cache, sequential sweep: every line
        // evicted before reuse.
        for _ in 0..2 {
            for addr in (0..4096u64).step_by(16) {
                c.access(addr);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn alpha_preset_geometry() {
        let cfg = CacheConfig::alpha_board_cache();
        assert_eq!(cfg.n_sets(), (2 << 20) / 32);
        let _ = CacheSim::new(cfg); // constructible
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = CacheSim::new(CacheConfig { size_bytes: 100, line_bytes: 10, ways: 1 });
    }
}
