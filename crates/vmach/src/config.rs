//! Machine configuration presets.

/// Static parameters of a simulated vector multiprocessor.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Clock period in nanoseconds (C90: 4.2 ns).
    pub clock_ns: f64,
    /// Vector register length in elements (C90: 128).
    pub vector_len: usize,
    /// Number of physical CPUs used (C90: up to 16; the paper tunes for
    /// 1, 2, 4 and 8).
    pub n_procs: usize,
    /// Number of memory banks (C90-class machines: on the order of 1024).
    pub n_banks: usize,
    /// Cycles a bank stays busy after servicing a request.
    pub bank_busy_cycles: u32,
    /// Per-extra-processor memory-bandwidth degradation applied to the
    /// per-element (te) part of vector costs: `factor = 1 + coeff·(p−1)`.
    ///
    /// Calibrated against Table I of the paper: list scan runs at 7.4
    /// cycles/vertex on 1 CPU but only 1.1 on 8 (6.7× speedup, not 8×);
    /// `coeff ≈ 0.027` reproduces the 2/4/8-CPU columns.
    pub contention_coeff: f64,
    /// Cycles charged per barrier synchronization.
    pub sync_cycles: f64,
}

impl MachineConfig {
    /// A Cray C90 with `p` processors.
    pub fn c90(p: usize) -> Self {
        assert!((1..=16).contains(&p), "the C90 has 1..=16 CPUs");
        Self {
            clock_ns: 4.2,
            vector_len: 128,
            n_procs: p,
            n_banks: 1024,
            bank_busy_cycles: 6,
            contention_coeff: 0.027,
            sync_cycles: 500.0,
        }
    }

    /// The bandwidth contention factor at this processor count.
    #[inline]
    pub fn contention_factor(&self) -> f64 {
        1.0 + self.contention_coeff * (self.n_procs as f64 - 1.0)
    }

    /// Total element-processor count (`vector_len × n_procs`): the size
    /// of the SIMD machine the paper's programming model exposes.
    #[inline]
    pub fn element_processors(&self) -> usize {
        self.vector_len * self.n_procs
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::c90(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c90_preset() {
        let m = MachineConfig::c90(1);
        assert_eq!(m.clock_ns, 4.2);
        assert_eq!(m.vector_len, 128);
        assert_eq!(m.contention_factor(), 1.0);
        assert_eq!(m.element_processors(), 128);
    }

    #[test]
    fn contention_grows_with_procs() {
        let m1 = MachineConfig::c90(1);
        let m8 = MachineConfig::c90(8);
        assert!(m8.contention_factor() > m1.contention_factor());
        // Table I calibration: 8-CPU factor ≈ 1.19.
        assert!((m8.contention_factor() - 1.189).abs() < 0.01);
        assert_eq!(m8.element_processors(), 1024);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn rejects_too_many_procs() {
        let _ = MachineConfig::c90(17);
    }
}
