//! Cost tables: the Hockney model, generic vector-op costs, and the
//! paper-calibrated kernel costs.
//!
//! Two layers:
//!
//! 1. [`OpKind`] — generic vector operations (gather, scatter, compress,
//!    elementwise, …) with per-element/startup costs chosen so that the
//!    *composition* of the ops in the paper's inner loops lands on the
//!    paper's published loop timings (e.g. the Phase-1 traversal step is
//!    two gathers: `2 × 1.70 = 3.40` cycles/element, matching
//!    `T_InitialScan(x) = 3.4x + 35`).
//!
//! 2. [`Kernel`] — the paper's named loops with their **published**
//!    coefficients (§3), used by the simulated Reid-Miller backend so the
//!    reproduction of Eq. (3)–(5) and Figs. 1/3/10/11 is anchored to the
//!    paper's own measurements. Baseline-algorithm kernels whose
//!    coefficients the paper reports only as ratios (Miller–Reif ≈ 20×
//!    ours and 3.5× serial; Anderson–Miller ≈ 3× faster than Miller–Reif,
//!    7× slower than ours) are calibrated to those ratios; this is
//!    documented per-kernel below.

/// Cost of one vector operation over `x` elements: `T(x) = te·x + t0`
/// (Hockney's `(n + n_1/2)` model with `t0 = te·n_1/2`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    /// Incremental time per element, in cycles.
    pub te: f64,
    /// Startup (vector half-performance) overhead per invocation, cycles.
    pub t0: f64,
}

impl OpCost {
    /// Construct a cost.
    pub const fn new(te: f64, t0: f64) -> Self {
        Self { te, t0 }
    }

    /// Evaluate the model at `x` elements.
    #[inline]
    pub fn at(&self, x: usize) -> f64 {
        self.te * x as f64 + self.t0
    }

    /// Scale the per-element part (memory-bandwidth contention); startup
    /// is processor-local and unscaled.
    #[inline]
    pub fn with_te_factor(&self, factor: f64) -> Self {
        Self { te: self.te * factor, t0: self.t0 }
    }
}

/// Generic vector operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Indexed load `dst[i] = src[idx[i]]` (the C90 has a single
    /// gather/scatter pipe; the cost reflects its serialization).
    Gather,
    /// Indexed store `dst[idx[i]] = src[i]`.
    Scatter,
    /// Contiguous vector load.
    Load,
    /// Contiguous vector store.
    Store,
    /// Elementwise arithmetic/logic (chained; usually hidden behind
    /// memory ops, so cheap but not free).
    Elementwise,
    /// Stream compaction ("pack"): keep flagged elements, per array.
    Compress,
    /// Index generation 0,1,2,… .
    Iota,
    /// Tree reduction to a scalar.
    Reduce,
    /// Vectorized pseudo-random number generation (multiplicative LCG on
    /// the Cray; used by the random-mate baselines).
    RandomGen,
    /// Elementwise comparison producing a mask.
    Compare,
    /// Masked merge/select.
    Select,
}

/// All op kinds, for table iteration.
pub const ALL_OPS: [OpKind; 11] = [
    OpKind::Gather,
    OpKind::Scatter,
    OpKind::Load,
    OpKind::Store,
    OpKind::Elementwise,
    OpKind::Compress,
    OpKind::Iota,
    OpKind::Reduce,
    OpKind::RandomGen,
    OpKind::Compare,
    OpKind::Select,
];

/// The paper's named loops (§3) plus calibrated baseline kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Set up `m+1` sublists: `22x + 1800` (paper: `T_Initialize`).
    Initialize,
    /// One link-traversal step of Phase 1 over `x` active sublists:
    /// `3.4x + 35` (paper: `T_InitialScan`; two gathers per element).
    InitialScan,
    /// Phase-1 traversal step for **list ranking** with the packed
    /// one-gather encoding: roughly half the gather traffic of
    /// `InitialScan`. Calibrated (with [`Kernel::FinalScanRank`]) so the
    /// 1-CPU asymptote is the paper's 5.1 cycles/vertex for ranking
    /// (vs 7.4 for scan).
    InitialScanRank,
    /// Load balance (pack) `x` sublists in Phase 1: `8.2x + 1200`
    /// (paper: `T_InitialPack`; five virtual-processor arrays).
    InitialPack,
    /// Build the reduced list of sublist sums: `11x + 650`
    /// (paper: `T_FindSublistList`).
    FindSublistList,
    /// One link-traversal step of Phase 3: `4.6x + 28`
    /// (paper: `T_FinalScan`; two gathers plus a scatter).
    FinalScan,
    /// Phase-3 traversal step for list ranking (packed): see
    /// [`Kernel::InitialScanRank`].
    FinalScanRank,
    /// Load balance (pack) `x` sublists in Phase 3: `7.2x + 950`
    /// (paper: `T_FinalPack`).
    FinalPack,
    /// Reconnect the sublists: `4.2x + 300` (paper: `T_RestoreList`).
    RestoreList,
    /// Serial list scan, per vertex: 43.6 cycles (Table I: 183 ns at
    /// 4.2 ns/cycle). Not vectorizable; also used for small Phase-2
    /// lists ("no worse than the serial time, 44 cycles/vertex").
    SerialScan,
    /// Serial list rank, per vertex: 42.1 cycles (Table I: 177 ns).
    SerialRank,
    /// One Wyllie pointer-jumping round over `x` live elements
    /// (`≈ 2.8x + 100`). The paper publishes no equation for Wyllie;
    /// Wyllie's (value, link) pair packs into one gathered word exactly
    /// like our ranking fast path (one gather + stores + chained add),
    /// and this calibration reproduces Fig. 1: Wyllie crosses our curve
    /// near list length 10³, beats the 43.6-cycle serial baseline for
    /// short-to-moderate lists, loses beyond `n ≈ 5·10⁴` on one CPU, and
    /// shows the sawtooth from `⌈log₂(n−1)⌉` rounds.
    WyllieRound,
    /// One Miller–Reif random-mate contraction round over `x` live
    /// vertices, **including** the per-round pack. Calibrated to the
    /// paper's measured ratio ("20 times slower than our algorithm and
    /// 3.5 times slower than the serial algorithm"): with expected live
    /// mass `Σ(3/4)^r·n = 4n` and reconstruction, `te = 30` lands the
    /// asymptote near 150 cycles/vertex.
    MillerReifRound,
    /// One Miller–Reif reconstruction round over `x` vertices being
    /// reinserted (splice-ins mirror splice-outs; total mass `n`).
    MillerReifExpand,
    /// One Anderson–Miller round over `x` active processor queues.
    /// Calibrated to the paper's ratios (3× faster than Miller–Reif,
    /// 7× slower than ours): with the biased coin's `≈ n/0.9` total
    /// attempts, `te = 30` and expansion `te = 18` land near 52
    /// cycles/vertex.
    AndersonMillerRound,
    /// Anderson–Miller reconstruction round over `x` vertices.
    AndersonMillerExpand,
    /// Per-element cost of building predecessor links (one scatter pass),
    /// needed by pointer-jumping scans: `≈ 1.9x + 40`.
    BuildPrev,
}

/// All kernels, for table iteration.
pub const ALL_KERNELS: [Kernel; 17] = [
    Kernel::Initialize,
    Kernel::InitialScan,
    Kernel::InitialScanRank,
    Kernel::InitialPack,
    Kernel::FindSublistList,
    Kernel::FinalScan,
    Kernel::FinalScanRank,
    Kernel::FinalPack,
    Kernel::RestoreList,
    Kernel::SerialScan,
    Kernel::SerialRank,
    Kernel::WyllieRound,
    Kernel::MillerReifRound,
    Kernel::MillerReifExpand,
    Kernel::AndersonMillerRound,
    Kernel::AndersonMillerExpand,
    Kernel::BuildPrev,
];

impl Kernel {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Initialize => "initialize",
            Kernel::InitialScan => "initial-scan",
            Kernel::InitialScanRank => "initial-scan-rank",
            Kernel::InitialPack => "initial-pack",
            Kernel::FindSublistList => "find-sublist-list",
            Kernel::FinalScan => "final-scan",
            Kernel::FinalScanRank => "final-scan-rank",
            Kernel::FinalPack => "final-pack",
            Kernel::RestoreList => "restore-list",
            Kernel::SerialScan => "serial-scan",
            Kernel::SerialRank => "serial-rank",
            Kernel::WyllieRound => "wyllie-round",
            Kernel::MillerReifRound => "miller-reif-round",
            Kernel::MillerReifExpand => "miller-reif-expand",
            Kernel::AndersonMillerRound => "anderson-miller-round",
            Kernel::AndersonMillerExpand => "anderson-miller-expand",
            Kernel::BuildPrev => "build-prev",
        }
    }
}

/// A complete cost table for one machine: per-op and per-kernel costs.
#[derive(Clone, Debug, PartialEq)]
pub struct CostProfile {
    op_costs: [OpCost; ALL_OPS.len()],
    kernel_costs: [OpCost; ALL_KERNELS.len()],
}

fn op_index(op: OpKind) -> usize {
    ALL_OPS.iter().position(|&o| o == op).expect("op in table")
}

fn kernel_index(k: Kernel) -> usize {
    ALL_KERNELS.iter().position(|&x| x == k).expect("kernel in table")
}

impl CostProfile {
    /// The Cray C90 profile, calibrated as documented on [`OpKind`] and
    /// [`Kernel`].
    pub fn c90() -> Self {
        let mut op_costs = [OpCost::new(0.0, 0.0); ALL_OPS.len()];
        let set = |costs: &mut [OpCost; ALL_OPS.len()], op: OpKind, te: f64, t0: f64| {
            costs[op_index(op)] = OpCost::new(te, t0);
        };
        // Per-op layer. A single gather/scatter pipe serializes indexed
        // memory traffic; chained arithmetic mostly hides behind it.
        set(&mut op_costs, OpKind::Gather, 1.70, 17.5);
        set(&mut op_costs, OpKind::Scatter, 1.20, 17.5);
        set(&mut op_costs, OpKind::Load, 0.35, 10.0);
        set(&mut op_costs, OpKind::Store, 0.35, 10.0);
        set(&mut op_costs, OpKind::Elementwise, 0.20, 5.0);
        // Pack of one array ≈ iota-under-mask + gather: paper's
        // InitialPack = 8.2x over 5 arrays → ~1.64/array.
        set(&mut op_costs, OpKind::Compress, 1.64, 240.0);
        set(&mut op_costs, OpKind::Iota, 0.20, 5.0);
        set(&mut op_costs, OpKind::Reduce, 0.40, 30.0);
        set(&mut op_costs, OpKind::RandomGen, 1.00, 20.0);
        set(&mut op_costs, OpKind::Compare, 0.20, 5.0);
        set(&mut op_costs, OpKind::Select, 0.20, 5.0);

        let mut kernel_costs = [OpCost::new(0.0, 0.0); ALL_KERNELS.len()];
        let kset = |costs: &mut [OpCost; ALL_KERNELS.len()], k: Kernel, te: f64, t0: f64| {
            costs[kernel_index(k)] = OpCost::new(te, t0);
        };
        // Paper §3, published coefficients (C90 clock cycles):
        kset(&mut kernel_costs, Kernel::Initialize, 22.0, 1800.0);
        kset(&mut kernel_costs, Kernel::InitialScan, 3.4, 35.0);
        kset(&mut kernel_costs, Kernel::InitialPack, 8.2, 1200.0);
        kset(&mut kernel_costs, Kernel::FindSublistList, 11.0, 650.0);
        kset(&mut kernel_costs, Kernel::FinalScan, 4.6, 28.0);
        kset(&mut kernel_costs, Kernel::FinalPack, 7.2, 950.0);
        kset(&mut kernel_costs, Kernel::RestoreList, 4.2, 300.0);
        kset(&mut kernel_costs, Kernel::SerialScan, 43.6, 100.0);
        kset(&mut kernel_costs, Kernel::SerialRank, 42.1, 100.0);
        // Packed ranking path: one gather for (value,link) + one for the
        // virtual-processor state → te sums to ≈ 5.1 + model excess.
        kset(&mut kernel_costs, Kernel::InitialScanRank, 1.9, 35.0);
        kset(&mut kernel_costs, Kernel::FinalScanRank, 3.3, 28.0);
        // Calibrated baseline kernels (see enum docs):
        kset(&mut kernel_costs, Kernel::WyllieRound, 2.8, 100.0);
        kset(&mut kernel_costs, Kernel::MillerReifRound, 30.0, 400.0);
        kset(&mut kernel_costs, Kernel::MillerReifExpand, 30.0, 400.0);
        kset(&mut kernel_costs, Kernel::AndersonMillerRound, 30.0, 150.0);
        kset(&mut kernel_costs, Kernel::AndersonMillerExpand, 18.0, 150.0);
        kset(&mut kernel_costs, Kernel::BuildPrev, 1.9, 40.0);

        Self { op_costs, kernel_costs }
    }

    /// Cost of a generic op.
    #[inline]
    pub fn op(&self, op: OpKind) -> OpCost {
        self.op_costs[op_index(op)]
    }

    /// Cost of a named kernel.
    #[inline]
    pub fn kernel(&self, k: Kernel) -> OpCost {
        self.kernel_costs[kernel_index(k)]
    }

    /// Override one op cost (ablations, what-if studies).
    pub fn set_op(&mut self, op: OpKind, cost: OpCost) {
        self.op_costs[op_index(op)] = cost;
    }

    /// Override one kernel cost.
    pub fn set_kernel(&mut self, k: Kernel, cost: OpCost) {
        self.kernel_costs[kernel_index(k)] = cost;
    }

    /// Apply a memory-bandwidth contention factor to all per-element
    /// coefficients (used by the multiprocessor model).
    pub fn with_contention(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for c in &mut out.op_costs {
            *c = c.with_te_factor(factor);
        }
        for c in &mut out.kernel_costs {
            *c = c.with_te_factor(factor);
        }
        out
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::c90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_model_evaluates() {
        let c = OpCost::new(3.4, 35.0);
        assert!((c.at(0) - 35.0).abs() < 1e-12);
        assert!((c.at(100) - 375.0).abs() < 1e-12);
    }

    #[test]
    fn paper_kernel_coefficients() {
        let p = CostProfile::c90();
        assert_eq!(p.kernel(Kernel::InitialScan), OpCost::new(3.4, 35.0));
        assert_eq!(p.kernel(Kernel::InitialPack), OpCost::new(8.2, 1200.0));
        assert_eq!(p.kernel(Kernel::FinalScan), OpCost::new(4.6, 28.0));
        assert_eq!(p.kernel(Kernel::FinalPack), OpCost::new(7.2, 950.0));
        assert_eq!(p.kernel(Kernel::Initialize), OpCost::new(22.0, 1800.0));
        assert_eq!(p.kernel(Kernel::FindSublistList), OpCost::new(11.0, 650.0));
        assert_eq!(p.kernel(Kernel::RestoreList), OpCost::new(4.2, 300.0));
    }

    #[test]
    fn composition_matches_paper_phase1_loop() {
        // The Phase-1 traversal step is two gathers per element; the op
        // layer must compose to the published 3.4 cycles/element.
        let p = CostProfile::c90();
        let two_gathers = 2.0 * p.op(OpKind::Gather).te;
        let published = p.kernel(Kernel::InitialScan).te;
        assert!(
            (two_gathers - published).abs() < 0.05,
            "2×gather = {two_gathers}, paper = {published}"
        );
        // Phase 3 adds a scatter.
        let with_scatter = two_gathers + p.op(OpKind::Scatter).te;
        let published3 = p.kernel(Kernel::FinalScan).te;
        assert!((with_scatter - published3).abs() < 0.05);
        // Pack of 5 arrays ≈ InitialPack.
        let five_packs = 5.0 * p.op(OpKind::Compress).te;
        assert!((five_packs - p.kernel(Kernel::InitialPack).te).abs() < 0.05);
    }

    #[test]
    fn serial_matches_table1() {
        // Table I: serial scan 183 ns, rank 177 ns at 4.2 ns/cycle.
        let p = CostProfile::c90();
        assert!((p.kernel(Kernel::SerialScan).te * 4.2 - 183.0).abs() < 1.0);
        assert!((p.kernel(Kernel::SerialRank).te * 4.2 - 177.0).abs() < 1.0);
    }

    #[test]
    fn contention_scales_te_only() {
        let p = CostProfile::c90().with_contention(1.19);
        let base = CostProfile::c90();
        let k = p.kernel(Kernel::InitialScan);
        assert!((k.te - 3.4 * 1.19).abs() < 1e-12);
        assert_eq!(k.t0, base.kernel(Kernel::InitialScan).t0);
    }

    #[test]
    fn overrides_apply() {
        let mut p = CostProfile::c90();
        p.set_kernel(Kernel::WyllieRound, OpCost::new(9.9, 1.0));
        assert_eq!(p.kernel(Kernel::WyllieRound), OpCost::new(9.9, 1.0));
        p.set_op(OpKind::Gather, OpCost::new(0.85, 17.5));
        assert_eq!(p.op(OpKind::Gather).te, 0.85);
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = ALL_KERNELS.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }
}
