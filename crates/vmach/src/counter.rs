//! Cycle accounting with per-region breakdown.

use crate::cycles::Cycles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accumulates charged cycles, split by named region (phase).
///
/// Regions use `&'static str` labels; a `BTreeMap` keeps report order
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct CycleCounter {
    total: f64,
    by_region: BTreeMap<&'static str, f64>,
    ops: u64,
}

impl CycleCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `cycles` to `region`.
    #[inline]
    pub fn charge(&mut self, region: &'static str, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative charge to {region}");
        self.total += cycles;
        *self.by_region.entry(region).or_insert(0.0) += cycles;
        self.ops += 1;
    }

    /// Total cycles charged.
    #[inline]
    pub fn total(&self) -> Cycles {
        Cycles(self.total)
    }

    /// Cycles charged to one region (0 if never charged).
    pub fn region(&self, region: &str) -> Cycles {
        Cycles(self.by_region.get(region).copied().unwrap_or(0.0))
    }

    /// Number of charge events (≈ number of vector instructions issued).
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// All regions and their cycles, in deterministic (sorted) order.
    pub fn regions(&self) -> impl Iterator<Item = (&'static str, Cycles)> + '_ {
        self.by_region.iter().map(|(&k, &v)| (k, Cycles(v)))
    }

    /// Fold another counter's charges into this one (same timeline —
    /// totals add).
    pub fn absorb(&mut self, other: &CycleCounter) {
        self.total += other.total;
        self.ops += other.ops;
        for (&k, &v) in &other.by_region {
            *self.by_region.entry(k).or_insert(0.0) += v;
        }
    }

    /// Render a breakdown table (cycles and percentages; ns at the given
    /// clock).
    pub fn report(&self, clock_ns: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<26} {:>14} {:>12} {:>7}", "region", "cycles", "ns", "share");
        for (region, c) in self.regions() {
            let _ = writeln!(
                out,
                "{:<26} {:>14.1} {:>12.1} {:>6.1}%",
                region,
                c.get(),
                c.to_ns(clock_ns),
                100.0 * c.get() / self.total.max(f64::MIN_POSITIVE)
            );
        }
        let _ = writeln!(
            out,
            "{:<26} {:>14.1} {:>12.1} {:>6.1}%",
            "TOTAL",
            self.total,
            self.total * clock_ns,
            100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_region() {
        let mut c = CycleCounter::new();
        c.charge("phase1", 10.0);
        c.charge("phase1", 5.0);
        c.charge("phase3", 2.5);
        assert_eq!(c.total(), Cycles(17.5));
        assert_eq!(c.region("phase1"), Cycles(15.0));
        assert_eq!(c.region("phase3"), Cycles(2.5));
        assert_eq!(c.region("nope"), Cycles(0.0));
        assert_eq!(c.op_count(), 3);
    }

    #[test]
    fn absorb_merges() {
        let mut a = CycleCounter::new();
        a.charge("x", 1.0);
        let mut b = CycleCounter::new();
        b.charge("x", 2.0);
        b.charge("y", 3.0);
        a.absorb(&b);
        assert_eq!(a.total(), Cycles(6.0));
        assert_eq!(a.region("x"), Cycles(3.0));
        assert_eq!(a.op_count(), 3);
    }

    #[test]
    fn report_contains_regions_and_total() {
        let mut c = CycleCounter::new();
        c.charge("alpha", 30.0);
        c.charge("beta", 70.0);
        let r = c.report(4.2);
        assert!(r.contains("alpha"));
        assert!(r.contains("beta"));
        assert!(r.contains("TOTAL"));
        assert!(r.contains("70.0%"));
    }

    #[test]
    fn regions_sorted_deterministically() {
        let mut c = CycleCounter::new();
        c.charge("zeta", 1.0);
        c.charge("alpha", 1.0);
        let names: Vec<_> = c.regions().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
