//! The [`Cycles`] unit type.
//!
//! All simulator accounting is in machine clock cycles (fractional,
//! because the paper's per-element coefficients like 3.4 cycles/element
//! are averages over pipelined execution). Conversion to nanoseconds uses
//! the machine's clock period — 4.2 ns on the C90.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A (possibly fractional) number of machine clock cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Cycles(pub f64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0.0);

    /// Raw cycle count.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Convert to nanoseconds at a given clock period (ns per cycle).
    #[inline]
    pub fn to_ns(self, clock_ns: f64) -> f64 {
        self.0 * clock_ns
    }

    /// Cycles per vertex for a workload of `n` vertices.
    #[inline]
    pub fn per(self, n: usize) -> f64 {
        self.0 / n as f64
    }

    /// Nanoseconds per vertex.
    #[inline]
    pub fn ns_per(self, n: usize, clock_ns: f64) -> f64 {
        self.to_ns(clock_ns) / n as f64
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<f64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: f64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<f64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: f64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Div<Cycles> for Cycles {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Cycles) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} Mcycles", self.0 / 1e6)
        } else {
            write!(f, "{:.1} cycles", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles(10.0) + Cycles(5.0);
        assert_eq!(a, Cycles(15.0));
        assert_eq!(a - Cycles(5.0), Cycles(10.0));
        assert_eq!(a * 2.0, Cycles(30.0));
        assert_eq!(a / 3.0, Cycles(5.0));
        assert_eq!(Cycles(30.0) / Cycles(15.0), 2.0);
        let mut b = Cycles::ZERO;
        b += Cycles(7.5);
        assert_eq!(b.get(), 7.5);
    }

    #[test]
    fn conversions() {
        // C90 clock: 4.2 ns
        let c = Cycles(100.0);
        assert!((c.to_ns(4.2) - 420.0).abs() < 1e-9);
        assert!((c.per(50) - 2.0).abs() < 1e-9);
        assert!((c.ns_per(50, 4.2) - 8.4).abs() < 1e-9);
    }

    #[test]
    fn sum_and_max() {
        let total: Cycles = [Cycles(1.0), Cycles(2.0), Cycles(3.5)].into_iter().sum();
        assert_eq!(total, Cycles(6.5));
        assert_eq!(Cycles(2.0).max(Cycles(3.0)), Cycles(3.0));
    }

    #[test]
    fn display_scales() {
        assert_eq!(Cycles(12.34).to_string(), "12.3 cycles");
        assert_eq!(Cycles(2_500_000.0).to_string(), "2.500 Mcycles");
    }
}
