//! # vmach — a Cray C90-style vector multiprocessor cost simulator
//!
//! The paper's evaluation platform is a Cray C90: a shared-memory vector
//! multiprocessor with a 4.2 ns clock, 128-element vector registers, up
//! to 16 CPUs, heavily banked memory, and one gather/scatter pipe per
//! CPU. We do not have one, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * **Vector operations execute over real Rust slices** — gather,
//!   scatter, compress (the paper's "pack"), elementwise arithmetic,
//!   iota, reductions — so algorithm results are exact and testable.
//! * **Every operation charges cycles** through the Hockney model
//!   `T(x) = te·x + t0` ([`cost::OpCost`]). Two cost layers exist:
//!   a generic per-operation layer ([`cost::OpKind`]) for composing new
//!   kernels, and a **paper-calibrated kernel layer** ([`cost::Kernel`])
//!   whose coefficients are exactly the loop timings published in §3 of
//!   the paper (e.g. `T_InitialScan(x) = 3.4x + 35` C90 clock cycles).
//! * **Multiprocessor mode** ([`multi`]) divides work across `p` CPUs
//!   with per-CPU counters, barrier costs, and a memory-bandwidth
//!   contention factor calibrated against Table I of the paper.
//! * **Banked memory** ([`memory`]) simulates bank-conflict stalls for an
//!   address stream, supporting the paper's remark that random sublist
//!   heads make systematic bank conflicts unlikely.
//! * **Scalar and workstation models** ([`scalar`], [`workstation`],
//!   [`cache`]) reproduce the serial C90 baseline and the DEC Alpha
//!   3000/600 baseline of Table I; the Alpha model runs a real
//!   set-associative LRU cache simulation to decide where a workload sits
//!   between the paper's "cache" and "memory" columns.
//!
//! Cycle accounting is deterministic: simulated experiments are exactly
//! reproducible, unlike wall-clock measurements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod cost;
pub mod counter;
pub mod cycles;
pub mod memory;
pub mod multi;
pub mod pipeline;
pub mod scalar;
pub mod vector;
pub mod workstation;

pub use config::MachineConfig;
pub use cost::{CostProfile, Kernel, OpCost, OpKind};
pub use counter::CycleCounter;
pub use cycles::Cycles;
pub use multi::ParallelTimer;
pub use vector::VectorProc;
