//! Banked-memory conflict model.
//!
//! The C90's memory is divided into banks; a bank that has just serviced
//! a request stays busy for several cycles. A vector memory operation
//! issues one request per clock, so a stream whose addresses revisit a
//! busy bank stalls. The paper: "We made no attempt to avoid memory bank
//! conflicts. However, since we are choosing random positions for the
//! heads of the sublists, systematic memory bank conflicts are unlikely."
//! This module lets us *check* that claim: random gather streams incur
//! negligible stalls, while power-of-two strides that alias onto few
//! banks are disastrous.

/// Result of simulating an address stream against banked memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Requests issued.
    pub accesses: u64,
    /// Total stall cycles (beyond the 1 request/cycle issue rate).
    pub stall_cycles: u64,
    /// Requests that found their bank busy.
    pub conflicts: u64,
}

impl BankStats {
    /// Average stall cycles per access.
    pub fn stalls_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that hit a busy bank.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.accesses as f64
        }
    }
}

/// A banked-memory simulator.
#[derive(Clone, Debug)]
pub struct BankSim {
    /// Next cycle at which each bank is free.
    free_at: Vec<u64>,
    busy_cycles: u64,
    now: u64,
    stats: BankStats,
}

impl BankSim {
    /// `n_banks` banks, each busy for `busy_cycles` after a request.
    pub fn new(n_banks: usize, busy_cycles: u32) -> Self {
        assert!(n_banks > 0);
        Self {
            free_at: vec![0; n_banks],
            busy_cycles: busy_cycles as u64,
            now: 0,
            stats: BankStats::default(),
        }
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.free_at.len()
    }

    /// Issue a request to the bank holding word address `addr`; returns
    /// the stall cycles this request incurred.
    pub fn access(&mut self, addr: usize) -> u64 {
        let bank = addr % self.free_at.len();
        // One issue slot per cycle.
        self.now += 1;
        let stall = self.free_at[bank].saturating_sub(self.now);
        if stall > 0 {
            self.stats.conflicts += 1;
            self.now += stall;
        }
        self.free_at[bank] = self.now + self.busy_cycles;
        self.stats.accesses += 1;
        self.stats.stall_cycles += stall;
        stall
    }

    /// Issue a whole stream.
    pub fn run(&mut self, addrs: impl IntoIterator<Item = usize>) -> BankStats {
        let before = self.stats;
        for a in addrs {
            self.access(a);
        }
        BankStats {
            accesses: self.stats.accesses - before.accesses,
            stall_cycles: self.stats.stall_cycles - before.stall_cycles,
            conflicts: self.stats.conflicts - before.conflicts,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Elapsed issue cycles including stalls.
    pub fn elapsed_cycles(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_has_no_conflicts() {
        let mut sim = BankSim::new(64, 6);
        let stats = sim.run(0..1000);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.stall_cycles, 0);
        assert_eq!(stats.accesses, 1000);
    }

    #[test]
    fn same_bank_stride_stalls_every_access() {
        let mut sim = BankSim::new(64, 6);
        // stride 64 → every access maps to bank 0.
        let stats = sim.run((0..100).map(|i| i * 64));
        assert_eq!(stats.accesses, 100);
        // After the first access, each subsequent one waits busy-1 ≈ 5.
        assert_eq!(stats.conflicts, 99);
        assert!(stats.stalls_per_access() > 4.0);
    }

    #[test]
    fn small_coprime_stride_is_fine() {
        let mut sim = BankSim::new(64, 6);
        let stats = sim.run((0..1000).map(|i| i * 7));
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn random_stream_has_low_conflict_rate() {
        // xorshift for a cheap deterministic pseudo-random stream.
        let mut x = 0x12345678u64;
        let addrs: Vec<usize> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1_000_000) as usize
            })
            .collect();
        let mut sim = BankSim::new(1024, 6);
        let stats = sim.run(addrs);
        // With 1024 banks and 6-cycle busy time, a uniform stream hits a
        // busy bank with probability ≈ 6/1024 < 1%.
        assert!(
            stats.conflict_rate() < 0.02,
            "conflict rate {} too high for random stream",
            stats.conflict_rate()
        );
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut sim = BankSim::new(8, 4);
        sim.run(0..8);
        sim.run(0..8);
        assert_eq!(sim.stats().accesses, 16);
        assert!(sim.elapsed_cycles() >= 16);
    }
}
