//! Multiprocessor timing: per-CPU timelines, barriers, contention.
//!
//! The paper's multiprocessor scheme (§5) assigns virtual processors to
//! physical processors **once**, load balances only locally, and
//! synchronizes a constant number of times. We model that with one
//! timeline per CPU; elapsed time is the maximum timeline, and barriers
//! advance every CPU to the maximum plus a synchronization cost. Memory
//! bandwidth is shared, so per-element costs are scaled by the
//! contention factor from [`MachineConfig`] (calibrated against Table I).

use crate::config::MachineConfig;
use crate::cost::CostProfile;
use crate::counter::CycleCounter;
use crate::cycles::Cycles;
use crate::vector::VectorProc;

/// Timelines for `p` cooperating vector processors.
#[derive(Clone, Debug)]
pub struct ParallelTimer {
    config: MachineConfig,
    /// Per-CPU elapsed cycles.
    timeline: Vec<f64>,
    /// Merged region accounting across CPUs (sums of work, not elapsed).
    merged: CycleCounter,
    barriers: u32,
}

impl ParallelTimer {
    /// A timer for the machine's processor count.
    pub fn new(config: MachineConfig) -> Self {
        let p = config.n_procs;
        Self { config, timeline: vec![0.0; p], merged: CycleCounter::new(), barriers: 0 }
    }

    /// Number of CPUs.
    pub fn n_procs(&self) -> usize {
        self.timeline.len()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// A [`VectorProc`] whose profile already includes this machine's
    /// contention factor; run a CPU's work on it, then commit with
    /// [`ParallelTimer::commit`].
    pub fn make_proc(&self) -> VectorProc {
        let profile = CostProfile::c90().with_contention(self.config.contention_factor());
        VectorProc::with_profile(profile, self.config.vector_len)
    }

    /// Commit a finished processor's counter to CPU `i`'s timeline.
    pub fn commit(&mut self, i: usize, proc: VectorProc) {
        let counter = proc.into_counter();
        self.timeline[i] += counter.total().get();
        self.merged.absorb(&counter);
    }

    /// Charge raw cycles to CPU `i` (already contention-scaled by the
    /// caller if appropriate).
    pub fn charge(&mut self, i: usize, region: &'static str, cycles: f64) {
        self.timeline[i] += cycles;
        self.merged.charge(region, cycles);
    }

    /// Charge the same serial work to *every* CPU (e.g. a redundantly
    /// executed scalar section), advancing all timelines.
    pub fn charge_all(&mut self, region: &'static str, cycles: f64) {
        for t in &mut self.timeline {
            *t += cycles;
        }
        self.merged.charge(region, cycles);
    }

    /// Barrier: all CPUs advance to the slowest timeline plus the sync
    /// cost.
    pub fn barrier(&mut self) {
        let max = self.timeline.iter().copied().fold(0.0, f64::max) + self.config.sync_cycles;
        for t in &mut self.timeline {
            *t = max;
        }
        self.barriers += 1;
        self.merged.charge("sync", self.config.sync_cycles);
    }

    /// Number of barriers executed (the paper: constant, independent of n).
    pub fn barrier_count(&self) -> u32 {
        self.barriers
    }

    /// Elapsed cycles: the slowest CPU's timeline.
    pub fn elapsed(&self) -> Cycles {
        Cycles(self.timeline.iter().copied().fold(0.0, f64::max))
    }

    /// Total work across CPUs (for work-efficiency accounting).
    pub fn total_work(&self) -> Cycles {
        Cycles(self.timeline.iter().sum())
    }

    /// Merged per-region accounting.
    pub fn merged_counter(&self) -> &CycleCounter {
        &self.merged
    }

    /// Per-CPU load imbalance: max/mean of the timelines.
    pub fn imbalance(&self) -> f64 {
        let max = self.timeline.iter().copied().fold(0.0, f64::max);
        let mean = self.timeline.iter().sum::<f64>() / self.timeline.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Kernel;

    #[test]
    fn elapsed_is_max_timeline() {
        let mut t = ParallelTimer::new(MachineConfig::c90(4));
        t.charge(0, "w", 100.0);
        t.charge(1, "w", 300.0);
        t.charge(2, "w", 200.0);
        assert_eq!(t.elapsed(), Cycles(300.0));
        assert_eq!(t.total_work(), Cycles(600.0));
        assert!((t.imbalance() - 300.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_aligns_and_charges_sync() {
        let cfg = MachineConfig::c90(2);
        let sync = cfg.sync_cycles;
        let mut t = ParallelTimer::new(cfg);
        t.charge(0, "w", 100.0);
        t.barrier();
        assert_eq!(t.elapsed(), Cycles(100.0 + sync));
        // Both CPUs now aligned: more work on CPU 1 extends from there.
        t.charge(1, "w", 50.0);
        assert_eq!(t.elapsed(), Cycles(150.0 + sync));
        assert_eq!(t.barrier_count(), 1);
    }

    #[test]
    fn make_proc_applies_contention() {
        let t8 = ParallelTimer::new(MachineConfig::c90(8));
        let p8 = t8.make_proc();
        let t1 = ParallelTimer::new(MachineConfig::c90(1));
        let p1 = t1.make_proc();
        let k8 = p8.profile().kernel(Kernel::InitialScan).te;
        let k1 = p1.profile().kernel(Kernel::InitialScan).te;
        assert!(k8 > k1, "8-CPU te must exceed 1-CPU te");
        assert!((k8 / k1 - MachineConfig::c90(8).contention_factor()).abs() < 1e-12);
    }

    #[test]
    fn commit_merges_counters() {
        let mut t = ParallelTimer::new(MachineConfig::c90(2));
        let mut p = t.make_proc();
        p.set_region("phase1");
        p.charge_kernel(Kernel::InitialScan, 100);
        let expect = p.elapsed().get();
        t.commit(0, p);
        assert_eq!(t.elapsed(), Cycles(expect));
        assert!(t.merged_counter().region("phase1").get() > 0.0);
    }

    #[test]
    fn charge_all_advances_every_cpu() {
        let mut t = ParallelTimer::new(MachineConfig::c90(3));
        t.charge_all("serial", 42.0);
        assert_eq!(t.elapsed(), Cycles(42.0));
        assert_eq!(t.total_work(), Cycles(126.0));
        assert!((t.imbalance() - 1.0).abs() < 1e-12);
    }
}
