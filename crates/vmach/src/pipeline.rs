//! A pipeline-level timing model of one C90 vector CPU.
//!
//! The kernel coefficients in [`crate::cost`] are the paper's *measured*
//! loop timings. This module shows they are **consistent with the
//! machine's microarchitecture** by deriving strip times from first
//! principles: functional units, vector startup, chaining, and — the
//! detail the paper leans on — a *single* shared gather/scatter pipe
//! ("the Cray C90 can perform only one gather or scatter operation at a
//! time").
//!
//! The model schedules a straight-line sequence of vector instructions
//! over one strip of `VLEN` elements:
//!
//! * each instruction occupies its functional unit for `startup + n`
//!   cycles;
//! * a dependent instruction may start `CHAIN_LATENCY` cycles after its
//!   producer starts (chaining), never before its unit frees up;
//! * gathers and scatters contend for the single gather/scatter unit;
//!   contiguous loads have two ports, stores one.
//!
//! `repro --bin pipeline_check` compares the derived per-element costs
//! of the paper's inner loops against the published coefficients.

/// Vector register length of the modelled machine.
pub const VLEN: usize = 128;
/// Cycles from a producer starting to deliver until a chained consumer
/// may start.
pub const CHAIN_LATENCY: u64 = 8;

/// Functional units of one vector CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Contiguous vector load port A.
    LoadA,
    /// Contiguous vector load port B.
    LoadB,
    /// Vector store port.
    Store,
    /// The single gather/scatter (indexed memory) pipe.
    GatherScatter,
    /// Integer/logical vector unit.
    Alu,
    /// Second ALU (shift/logical) for packed-word extraction.
    Alu2,
}

/// All units, for occupancy tables.
pub const ALL_UNITS: [Unit; 6] =
    [Unit::LoadA, Unit::LoadB, Unit::Store, Unit::GatherScatter, Unit::Alu, Unit::Alu2];

impl Unit {
    /// Vector startup (pipe fill) cycles for this unit.
    pub fn startup(&self) -> u64 {
        match self {
            Unit::LoadA | Unit::LoadB => 10,
            Unit::Store => 8,
            Unit::GatherScatter => 14, // index setup + memory latency
            Unit::Alu | Unit::Alu2 => 4,
        }
    }

    /// Sustained cycles per element. Contiguous streams and ALU ops run
    /// at 1/cycle; **indexed** accesses cannot — the index stream, bank
    /// busy time and the network return path throttle the single
    /// gather/scatter pipe to ≈0.6 elements/cycle. (This is the number
    /// that makes the paper's measured 3.4 cycles/element for two
    /// gathers microarchitecturally coherent: 2 × 1.6 + startups.)
    pub fn throughput(&self) -> f64 {
        match self {
            Unit::GatherScatter => 1.6,
            _ => 1.0,
        }
    }

    /// Busy cycles for `n` elements on this unit.
    pub fn busy(&self, n: u64) -> u64 {
        (n as f64 * self.throughput()).ceil() as u64
    }
}

/// One vector instruction in a strip: a unit, an output register id and
/// input register ids (register ids are arbitrary small integers the
/// caller chooses; `None` inputs come from memory/immediates).
#[derive(Clone, Debug)]
pub struct VInstr {
    /// Functional unit used.
    pub unit: Unit,
    /// Destination virtual register.
    pub dst: u32,
    /// Source virtual registers (chaining edges).
    pub srcs: Vec<u32>,
}

impl VInstr {
    /// Convenience constructor.
    pub fn new(unit: Unit, dst: u32, srcs: &[u32]) -> Self {
        Self { unit, dst, srcs: srcs.to_vec() }
    }
}

/// Result of scheduling one strip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StripTime {
    /// Total cycles for the strip (makespan).
    pub makespan: u64,
    /// Derived steady-state cost per element, amortizing the strip.
    pub per_element: f64,
}

/// Schedule a straight-line vector program over one strip of `n`
/// elements (list scheduling with chaining).
pub fn schedule_strip(program: &[VInstr], n: usize) -> StripTime {
    assert!((1..=VLEN).contains(&n), "a strip holds 1..=VLEN elements");
    let n = n as u64;
    let mut unit_free: std::collections::HashMap<Unit, u64> = Default::default();
    let mut reg_start: std::collections::HashMap<u32, u64> = Default::default();
    let mut reg_done: std::collections::HashMap<u32, u64> = Default::default();
    let mut makespan = 0u64;
    for ins in program {
        let unit_ready = *unit_free.get(&ins.unit).unwrap_or(&0);
        // Chaining: may start CHAIN_LATENCY after each producer starts
        // delivering (producer start + its startup + chain latency), but
        // never after the producer has long finished (then it is just a
        // RAW dependency on completion — take the min of the two).
        let mut ready = unit_ready;
        for s in &ins.srcs {
            let ps = reg_start.get(s).copied().unwrap_or(0);
            let pd = reg_done.get(s).copied().unwrap_or(0);
            let chain = ps + CHAIN_LATENCY;
            ready = ready.max(chain.min(pd));
        }
        let start = ready;
        let done = start + ins.unit.startup() + ins.unit.busy(n);
        unit_free.insert(ins.unit, done);
        reg_start.insert(ins.dst, start + ins.unit.startup());
        reg_done.insert(ins.dst, done);
        makespan = makespan.max(done);
    }
    StripTime { makespan, per_element: makespan as f64 / n as f64 }
}

/// Steady-state per-element cost of a loop body, amortized over a full
/// strip.
///
/// ```
/// use vmach::pipeline::{kernels, per_element};
/// // The Phase-1 scan loop derives to ≈ the published 3.4 cycles/elem.
/// let c = per_element(&kernels::initial_scan());
/// assert!((c - 3.4).abs() < 0.7);
/// ```
pub fn per_element(program: &[VInstr]) -> f64 {
    schedule_strip(program, VLEN).per_element
}

/// The paper's inner loops expressed as vector programs.
pub mod kernels {
    use super::{Unit, VInstr};

    /// Phase-1 traversal step (list **scan**):
    /// `sum += value[next]; next = link[next]` — two gathers through the
    /// single pipe, a chained add, with `sum`/`next` held in registers
    /// across iterations (the paper unrolls to avoid reloading them).
    pub fn initial_scan() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::GatherScatter, 1, &[0]), // v1 = value[next]
            VInstr::new(Unit::Alu, 2, &[1, 2]),        // sum += v1
            VInstr::new(Unit::GatherScatter, 0, &[0]), // next = link[next]
        ]
    }

    /// Phase-1 traversal step (list **rank**, packed one-gather):
    /// a single 64-bit gather, then shift/mask extraction on the ALUs.
    pub fn initial_scan_rank() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::GatherScatter, 1, &[0]), // word = packed[next]
            VInstr::new(Unit::Alu2, 3, &[1]),          // value = word >> 32
            VInstr::new(Unit::Alu, 2, &[3, 2]),        // sum += value
            VInstr::new(Unit::Alu2, 0, &[1]),          // next = word & mask
        ]
    }

    /// Phase-3 traversal step (scan): the Phase-1 loop plus a scatter of
    /// the running prefix, all competing for the one gather/scatter
    /// pipe.
    pub fn final_scan() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::GatherScatter, 3, &[0, 2]), // out[next] = acc
            VInstr::new(Unit::GatherScatter, 1, &[0]),    // v1 = value[next]
            VInstr::new(Unit::Alu, 2, &[1, 2]),           // acc += v1
            VInstr::new(Unit::GatherScatter, 0, &[0]),    // next = link[next]
        ]
    }

    /// Phase-3 traversal step (rank, packed).
    pub fn final_scan_rank() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::GatherScatter, 3, &[0, 2]), // out[next] = acc
            VInstr::new(Unit::GatherScatter, 1, &[0]),    // word = packed[next]
            VInstr::new(Unit::Alu, 2, &[2]),              // acc += 1
            VInstr::new(Unit::Alu2, 0, &[1]),             // next = word & mask
        ]
    }

    /// One array's worth of packing: load flags, load data, compress
    /// (modelled on the gather/scatter pipe), store.
    pub fn pack_one_array() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::LoadA, 1, &[]),          // data
            VInstr::new(Unit::GatherScatter, 2, &[1]), // compressed scatter
        ]
    }

    /// One Wyllie round (scan): like `initial_scan` but also storing the
    /// updated vectors back (no cross-iteration registers — every round
    /// touches all n).
    pub fn wyllie_round() -> Vec<VInstr> {
        vec![
            VInstr::new(Unit::LoadA, 0, &[]),          // s
            VInstr::new(Unit::LoadB, 4, &[]),          // prev
            VInstr::new(Unit::GatherScatter, 1, &[4]), // s[prev]
            VInstr::new(Unit::Alu, 2, &[1, 0]),        // combine
            VInstr::new(Unit::Store, 3, &[2]),         // store s'
            VInstr::new(Unit::GatherScatter, 5, &[4]), // prev[prev]
            VInstr::new(Unit::Store, 6, &[5]),         // store prev'
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::kernels;
    use super::*;

    #[test]
    fn single_instruction_strip() {
        let p = vec![VInstr::new(Unit::Alu, 0, &[])];
        let t = schedule_strip(&p, VLEN);
        assert_eq!(t.makespan, Unit::Alu.startup() + VLEN as u64);
    }

    #[test]
    fn independent_instructions_on_different_units_overlap() {
        let p = vec![VInstr::new(Unit::LoadA, 0, &[]), VInstr::new(Unit::LoadB, 1, &[])];
        let t = schedule_strip(&p, VLEN);
        // Fully parallel: the makespan is one load, not two.
        assert_eq!(t.makespan, Unit::LoadA.startup() + VLEN as u64);
    }

    #[test]
    fn same_unit_serializes() {
        let p = vec![
            VInstr::new(Unit::GatherScatter, 0, &[]),
            VInstr::new(Unit::GatherScatter, 1, &[]),
        ];
        let t = schedule_strip(&p, VLEN);
        assert_eq!(
            t.makespan,
            2 * (Unit::GatherScatter.startup() + Unit::GatherScatter.busy(VLEN as u64))
        );
    }

    #[test]
    fn chaining_beats_completion_wait() {
        let chained = vec![VInstr::new(Unit::LoadA, 0, &[]), VInstr::new(Unit::Alu, 1, &[0])];
        let t = schedule_strip(&chained, VLEN);
        // The ALU starts CHAIN_LATENCY after the load starts delivering,
        // far before the load completes.
        let serial = (Unit::LoadA.startup() + VLEN as u64) + (Unit::Alu.startup() + VLEN as u64);
        assert!(t.makespan < serial);
    }

    #[test]
    fn derived_initial_scan_near_published_3_4() {
        let derived = per_element(&kernels::initial_scan());
        assert!(
            (derived - 3.4).abs() / 3.4 < 0.2,
            "derived {derived:.2} cycles/element vs published 3.4"
        );
    }

    #[test]
    fn derived_final_scan_near_published_4_6() {
        let derived = per_element(&kernels::final_scan());
        assert!(
            (derived - 4.6).abs() / 4.6 < 0.25,
            "derived {derived:.2} cycles/element vs published 4.6"
        );
    }

    #[test]
    fn packed_rank_loop_is_cheaper() {
        let scan = per_element(&kernels::initial_scan());
        let rank = per_element(&kernels::initial_scan_rank());
        // One gather instead of two: the pipe bottleneck halves.
        assert!(rank < scan * 0.75, "rank {rank:.2} vs scan {scan:.2}");
    }

    #[test]
    fn wyllie_round_cost_plausible() {
        let w = per_element(&kernels::wyllie_round());
        // Calibrated table uses 2.8; the unpacked two-gather round costs
        // more — the derivation brackets the table between the packed
        // (≈2) and unpacked (≈4+) variants.
        assert!(w > 2.0 && w < 6.0, "wyllie round {w:.2}");
    }

    #[test]
    fn short_strips_pay_relatively_more() {
        let k = kernels::initial_scan();
        let full = schedule_strip(&k, VLEN).per_element;
        let short = schedule_strip(&k, 8).per_element;
        assert!(
            short > 1.8 * full,
            "8-element strip {short:.2} should dwarf full-strip {full:.2} — \
             the paper's 'short vectors are inefficient' remark"
        );
    }

    #[test]
    #[should_panic(expected = "strip holds")]
    fn oversized_strip_rejected() {
        let _ = schedule_strip(&kernels::initial_scan(), VLEN + 1);
    }
}
