//! The C90 scalar (serial) baseline.
//!
//! Table I: on one C90 CPU the serial algorithms run at 177 ns/vertex
//! (rank) and 183 ns/vertex (scan) — nearly identical because the C90's
//! two input ports fetch link and value simultaneously. The serial code
//! is a pointer chase, so it does not vectorize; the simulator charges a
//! flat per-vertex cost from the [`Kernel::SerialRank`] /
//! [`Kernel::SerialScan`] table entries.

use crate::cost::{CostProfile, Kernel};
use crate::counter::CycleCounter;
use crate::cycles::Cycles;

/// A simulated scalar processor.
#[derive(Clone, Debug)]
pub struct ScalarProc {
    profile: CostProfile,
    counter: CycleCounter,
}

impl ScalarProc {
    /// Scalar processor with the C90 cost profile.
    pub fn new() -> Self {
        Self { profile: CostProfile::c90(), counter: CycleCounter::new() }
    }

    /// With an explicit profile.
    pub fn with_profile(profile: CostProfile) -> Self {
        Self { profile, counter: CycleCounter::new() }
    }

    /// Charge a serial list-rank traversal of `n` vertices.
    pub fn charge_rank(&mut self, n: usize) {
        let c = self.profile.kernel(Kernel::SerialRank);
        self.counter.charge("serial-rank", c.at(n));
    }

    /// Charge a serial list-scan traversal of `n` vertices.
    pub fn charge_scan(&mut self, n: usize) {
        let c = self.profile.kernel(Kernel::SerialScan);
        self.counter.charge("serial-scan", c.at(n));
    }

    /// Elapsed cycles.
    pub fn elapsed(&self) -> Cycles {
        self.counter.total()
    }

    /// The counter.
    pub fn counter(&self) -> &CycleCounter {
        &self.counter
    }

    /// Consume, returning the counter.
    pub fn into_counter(self) -> CycleCounter {
        self.counter
    }
}

impl Default for ScalarProc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_cost_matches_table1() {
        let mut p = ScalarProc::new();
        p.charge_rank(1_000_000);
        // 42.1 cycles/vertex ≈ 177 ns at 4.2 ns/cycle.
        let ns_per_vertex = p.elapsed().ns_per(1_000_000, 4.2);
        assert!((ns_per_vertex - 177.0).abs() < 1.0, "got {ns_per_vertex}");
    }

    #[test]
    fn scan_slightly_slower_than_rank() {
        let mut a = ScalarProc::new();
        a.charge_rank(10_000);
        let mut b = ScalarProc::new();
        b.charge_scan(10_000);
        assert!(b.elapsed() > a.elapsed());
        // ...but on the C90 only barely (two input ports): within 5%.
        assert!(b.elapsed().get() / a.elapsed().get() < 1.05);
    }

    #[test]
    fn charges_accumulate() {
        let mut p = ScalarProc::new();
        p.charge_scan(100);
        p.charge_scan(100);
        assert_eq!(p.counter().region("serial-scan"), p.elapsed());
        assert!(p.elapsed().get() > 2.0 * 43.6 * 100.0 - 1.0);
    }
}
