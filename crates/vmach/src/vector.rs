//! A single vector processor: real data operations with cycle charging.
//!
//! Operations execute eagerly on Rust slices so that simulated algorithms
//! produce exact results; each call charges the [`CostProfile`] cost of
//! the corresponding C90 vector instruction sequence to the current
//! *region* (phase label). Strip-mining to the 128-element register
//! length is folded into the Hockney coefficients, as in the paper's own
//! loop timings.

use crate::config::MachineConfig;
use crate::cost::{CostProfile, Kernel, OpKind};
use crate::counter::CycleCounter;
use crate::cycles::Cycles;

/// A simulated vector processor.
#[derive(Clone, Debug)]
pub struct VectorProc {
    profile: CostProfile,
    counter: CycleCounter,
    region: &'static str,
    vlen: usize,
}

impl VectorProc {
    /// Processor with the machine's cost profile (no contention — that is
    /// applied by [`crate::multi::ParallelTimer`]).
    pub fn new(config: &MachineConfig) -> Self {
        Self::with_profile(CostProfile::c90(), config.vector_len)
    }

    /// Processor with an explicit profile (ablations).
    pub fn with_profile(profile: CostProfile, vlen: usize) -> Self {
        Self { profile, counter: CycleCounter::new(), region: "main", vlen }
    }

    /// Vector register length.
    #[inline]
    pub fn vlen(&self) -> usize {
        self.vlen
    }

    /// Number of strips needed for `n` elements.
    #[inline]
    pub fn strips(&self, n: usize) -> usize {
        n.div_ceil(self.vlen)
    }

    /// Set the region (phase label) subsequent charges go to.
    pub fn set_region(&mut self, region: &'static str) {
        self.region = region;
    }

    /// The cost profile in use.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// The accumulated counter.
    pub fn counter(&self) -> &CycleCounter {
        &self.counter
    }

    /// Total cycles so far.
    pub fn elapsed(&self) -> Cycles {
        self.counter.total()
    }

    /// Consume the processor, returning its counter.
    pub fn into_counter(self) -> CycleCounter {
        self.counter
    }

    /// Charge a generic op over `x` elements (no data movement).
    #[inline]
    pub fn charge_op(&mut self, op: OpKind, x: usize) {
        let c = self.profile.op(op);
        self.counter.charge(self.region, c.at(x));
    }

    /// Charge a named kernel over `x` elements (no data movement).
    #[inline]
    pub fn charge_kernel(&mut self, k: Kernel, x: usize) {
        let c = self.profile.kernel(k);
        self.counter.charge(self.region, c.at(x));
    }

    // ------------------------------------------------------------------
    // Data-moving operations.
    // ------------------------------------------------------------------

    /// Gather: `out[i] = src[idx[i]]`.
    pub fn gather<T: Copy>(&mut self, src: &[T], idx: &[u32]) -> Vec<T> {
        self.charge_op(OpKind::Gather, idx.len());
        idx.iter().map(|&i| src[i as usize]).collect()
    }

    /// Gather into an existing buffer (avoids allocation in hot loops).
    pub fn gather_into<T: Copy>(&mut self, src: &[T], idx: &[u32], out: &mut Vec<T>) {
        self.charge_op(OpKind::Gather, idx.len());
        out.clear();
        out.extend(idx.iter().map(|&i| src[i as usize]));
    }

    /// Scatter: `dst[idx[i]] = vals[i]`. Indices must be distinct (EREW);
    /// enforced in debug builds.
    pub fn scatter<T: Copy>(&mut self, dst: &mut [T], idx: &[u32], vals: &[T]) {
        assert_eq!(idx.len(), vals.len());
        self.charge_op(OpKind::Scatter, idx.len());
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::new();
            for &i in idx {
                assert!(seen.insert(i), "EREW violation: duplicate scatter index {i}");
            }
        }
        for (&i, &v) in idx.iter().zip(vals) {
            dst[i as usize] = v;
        }
    }

    /// Elementwise map.
    pub fn map<T: Copy, U>(&mut self, src: &[T], f: impl FnMut(T) -> U) -> Vec<U> {
        self.charge_op(OpKind::Elementwise, src.len());
        src.iter().copied().map(f).collect()
    }

    /// Elementwise zip-map of two equal-length vectors.
    pub fn zip_map<A: Copy, B: Copy, U>(
        &mut self,
        a: &[A],
        b: &[B],
        mut f: impl FnMut(A, B) -> U,
    ) -> Vec<U> {
        assert_eq!(a.len(), b.len());
        self.charge_op(OpKind::Elementwise, a.len());
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    }

    /// In-place elementwise update.
    pub fn update<T: Copy>(&mut self, xs: &mut [T], mut f: impl FnMut(T) -> T) {
        self.charge_op(OpKind::Elementwise, xs.len());
        for x in xs {
            *x = f(*x);
        }
    }

    /// Compress ("pack"): keep elements whose flag is set, preserving
    /// order. The paper's load-balancing primitive.
    pub fn compress<T: Copy>(&mut self, data: &[T], keep: &[bool]) -> Vec<T> {
        assert_eq!(data.len(), keep.len());
        self.charge_op(OpKind::Compress, data.len());
        data.iter().zip(keep).filter_map(|(&d, &k)| if k { Some(d) } else { None }).collect()
    }

    /// Indices of set flags (iota + compress), used to pack many parallel
    /// arrays with one index vector.
    pub fn compress_indices(&mut self, keep: &[bool]) -> Vec<u32> {
        self.charge_op(OpKind::Iota, keep.len());
        self.charge_op(OpKind::Compress, keep.len());
        keep.iter()
            .enumerate()
            .filter_map(|(i, &k)| if k { Some(i as u32) } else { None })
            .collect()
    }

    /// Index vector `0..n`.
    pub fn iota(&mut self, n: usize) -> Vec<u32> {
        self.charge_op(OpKind::Iota, n);
        (0..n as u32).collect()
    }

    /// Constant-fill a vector.
    pub fn fill<T: Copy>(&mut self, n: usize, v: T) -> Vec<T> {
        self.charge_op(OpKind::Store, n);
        vec![v; n]
    }

    /// Sum-reduce.
    pub fn reduce_sum(&mut self, xs: &[i64]) -> i64 {
        self.charge_op(OpKind::Reduce, xs.len());
        xs.iter().sum()
    }

    /// Count set flags (population count reduce).
    pub fn reduce_count(&mut self, flags: &[bool]) -> usize {
        self.charge_op(OpKind::Reduce, flags.len());
        flags.iter().filter(|&&b| b).count()
    }

    /// Elementwise comparison producing a mask.
    pub fn compare<T: Copy>(
        &mut self,
        a: &[T],
        b: &[T],
        mut f: impl FnMut(T, T) -> bool,
    ) -> Vec<bool> {
        assert_eq!(a.len(), b.len());
        self.charge_op(OpKind::Compare, a.len());
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    }

    /// Masked select: `out[i] = if mask[i] { a[i] } else { b[i] }`.
    pub fn select<T: Copy>(&mut self, mask: &[bool], a: &[T], b: &[T]) -> Vec<T> {
        assert_eq!(mask.len(), a.len());
        assert_eq!(mask.len(), b.len());
        self.charge_op(OpKind::Select, mask.len());
        mask.iter().zip(a.iter().zip(b)).map(|(&m, (&x, &y))| if m { x } else { y }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> VectorProc {
        VectorProc::new(&MachineConfig::c90(1))
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut p = proc();
        let src = vec![10i64, 20, 30, 40];
        let idx = vec![3u32, 0, 2];
        let g = p.gather(&src, &idx);
        assert_eq!(g, vec![40, 10, 30]);
        let mut dst = vec![0i64; 4];
        p.scatter(&mut dst, &idx, &g);
        assert_eq!(dst, vec![10, 0, 30, 40]);
        assert!(p.elapsed().get() > 0.0);
    }

    #[test]
    #[cfg(debug_assertions)] // the check compiles out of release builds
    #[should_panic(expected = "EREW")]
    fn scatter_rejects_duplicate_indices_in_debug() {
        let mut p = proc();
        let mut dst = vec![0i64; 4];
        p.scatter(&mut dst, &[1, 1], &[5, 6]);
    }

    #[test]
    fn compress_keeps_order() {
        let mut p = proc();
        let data = vec![1, 2, 3, 4, 5];
        let keep = vec![true, false, true, false, true];
        assert_eq!(p.compress(&data, &keep), vec![1, 3, 5]);
        assert_eq!(p.compress_indices(&keep), vec![0, 2, 4]);
    }

    #[test]
    fn costs_follow_hockney_model() {
        let mut p = proc();
        let src = vec![0i64; 1000];
        let idx: Vec<u32> = (0..1000).collect();
        let before = p.elapsed().get();
        let _ = p.gather(&src, &idx);
        let after = p.elapsed().get();
        let c = p.profile().op(OpKind::Gather);
        assert!((after - before - c.at(1000)).abs() < 1e-9);
    }

    #[test]
    fn regions_route_charges() {
        let mut p = proc();
        p.set_region("phase1");
        let _ = p.iota(10);
        p.set_region("phase3");
        let _ = p.iota(10);
        assert!(p.counter().region("phase1").get() > 0.0);
        assert!(p.counter().region("phase3").get() > 0.0);
        assert_eq!(p.counter().region("phase1").get(), p.counter().region("phase3").get());
    }

    #[test]
    fn kernel_charges() {
        let mut p = proc();
        p.charge_kernel(Kernel::InitialScan, 100);
        assert!((p.elapsed().get() - (3.4 * 100.0 + 35.0)).abs() < 1e-9);
    }

    #[test]
    fn elementwise_ops() {
        let mut p = proc();
        let xs = vec![1i64, 2, 3];
        assert_eq!(p.map(&xs, |x| x * 2), vec![2, 4, 6]);
        assert_eq!(p.zip_map(&xs, &xs, |a, b| a + b), vec![2, 4, 6]);
        let mut ys = xs.clone();
        p.update(&mut ys, |x| x + 1);
        assert_eq!(ys, vec![2, 3, 4]);
        assert_eq!(p.reduce_sum(&xs), 6);
        assert_eq!(p.reduce_count(&[true, false, true]), 2);
        let mask = p.compare(&xs, &[2i64, 2, 2], |a, b| a > b);
        assert_eq!(mask, vec![false, false, true]);
        assert_eq!(p.select(&mask, &[9i64, 9, 9], &xs), vec![1, 2, 9]);
        assert_eq!(p.fill(3, 7u8), vec![7, 7, 7]);
    }

    #[test]
    fn strips_round_up() {
        let p = proc();
        assert_eq!(p.strips(1), 1);
        assert_eq!(p.strips(128), 1);
        assert_eq!(p.strips(129), 2);
        assert_eq!(p.strips(0), 0);
    }
}
