//! The DEC Alpha 3000/600 workstation baseline (Table I).
//!
//! Table I reports per-vertex times for the Alpha that "depend on whether
//! the data are already in the cache or not": rank 98 ns (cache) vs
//! 690 ns (memory); scan 200 ns vs 990 ns. We reproduce the distinction
//! mechanistically: a real cache simulation of the traversal's access
//! stream yields a miss ratio, and the per-vertex time interpolates
//! between the calibrated all-hit and all-miss endpoints.

use crate::cache::{CacheConfig, CacheSim, CacheStats};

/// Calibrated endpoint costs (ns per vertex) for one workstation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkstationConfig {
    /// Rank traversal, working set resident in cache.
    pub rank_cached_ns: f64,
    /// Rank traversal, every access missing to memory.
    pub rank_memory_ns: f64,
    /// Scan traversal, cached.
    pub scan_cached_ns: f64,
    /// Scan traversal, out of memory.
    pub scan_memory_ns: f64,
    /// Cache geometry used for the mechanistic miss-ratio simulation.
    pub cache: CacheConfig,
    /// Bytes per link-array element.
    pub link_bytes: u64,
    /// Bytes per value-array element.
    pub value_bytes: u64,
}

impl WorkstationConfig {
    /// The DEC 3000/600 Alpha of Table I.
    pub fn dec_alpha_3000_600() -> Self {
        Self {
            rank_cached_ns: 98.0,
            rank_memory_ns: 690.0,
            scan_cached_ns: 200.0,
            scan_memory_ns: 990.0,
            cache: CacheConfig::alpha_board_cache(),
            link_bytes: 4,
            value_bytes: 8,
        }
    }
}

/// Result of simulating a traversal on the workstation model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkstationRun {
    /// Per-vertex time in nanoseconds.
    pub ns_per_vertex: f64,
    /// Total nanoseconds.
    pub total_ns: f64,
    /// Cache statistics of the measured traversal.
    pub cache: CacheStats,
}

/// The workstation model.
#[derive(Clone, Debug)]
pub struct WorkstationModel {
    config: WorkstationConfig,
}

impl WorkstationModel {
    /// Model with the given calibration.
    pub fn new(config: WorkstationConfig) -> Self {
        Self { config }
    }

    /// The Table I Alpha.
    pub fn dec_alpha() -> Self {
        Self::new(WorkstationConfig::dec_alpha_3000_600())
    }

    /// The calibration in use.
    pub fn config(&self) -> &WorkstationConfig {
        &self.config
    }

    /// Simulate a serial **list rank** over the given link array.
    ///
    /// `warm` pre-touches the working set (the paper's "data already in
    /// the cache" case); cold runs include compulsory misses.
    pub fn run_rank(&self, links: &[u32], head: u32, warm: bool) -> WorkstationRun {
        let mut cache = CacheSim::new(self.config.cache);
        let lb = self.config.link_bytes;
        if warm {
            for v in 0..links.len() as u64 {
                cache.warm(v * lb);
            }
        }
        // The rank loop reads next[v] once per vertex (the rank itself
        // lives in registers and a result array written sequentially —
        // sequential stores stream and are folded into the endpoints).
        let mut v = head;
        for _ in 0..links.len() {
            cache.access(v as u64 * lb);
            v = links[v as usize];
        }
        self.finish(
            cache.stats(),
            self.config.rank_cached_ns,
            self.config.rank_memory_ns,
            links.len(),
        )
    }

    /// Simulate a serial **list scan**: reads `next[v]` and `value[v]`
    /// from separate arrays each step.
    pub fn run_scan(&self, links: &[u32], head: u32, warm: bool) -> WorkstationRun {
        let mut cache = CacheSim::new(self.config.cache);
        let lb = self.config.link_bytes;
        let vb = self.config.value_bytes;
        // The two arrays sit contiguously in memory (as consecutive
        // allocations would), so they do not systematically alias onto
        // the same direct-mapped sets.
        let value_base: u64 = (links.len() as u64 * lb).next_multiple_of(4096);
        if warm {
            for v in 0..links.len() as u64 {
                cache.warm(v * lb);
                cache.warm(value_base + v * vb);
            }
        }
        let mut v = head;
        for _ in 0..links.len() {
            cache.access(v as u64 * lb);
            cache.access(value_base + v as u64 * vb);
            v = links[v as usize];
        }
        self.finish(
            cache.stats(),
            self.config.scan_cached_ns,
            self.config.scan_memory_ns,
            links.len(),
        )
    }

    fn finish(
        &self,
        stats: CacheStats,
        cached_ns: f64,
        memory_ns: f64,
        n: usize,
    ) -> WorkstationRun {
        let ns_per_vertex = cached_ns + stats.miss_ratio() * (memory_ns - cached_ns);
        WorkstationRun { ns_per_vertex, total_ns: ns_per_vertex * n as f64, cache: stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random-permutation link array built without external deps
    /// (xorshift Fisher–Yates), plus head.
    fn random_links(n: usize, mut seed: u64) -> (Vec<u32>, u32) {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let j = (seed % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut links = vec![0u32; n];
        for w in order.windows(2) {
            links[w[0] as usize] = w[1];
        }
        let tail = order[n - 1];
        links[tail as usize] = tail;
        (links, order[0])
    }

    #[test]
    fn small_warm_list_hits_cache_endpoint() {
        // 10k vertices × 4 bytes = 40 KB ≪ 2 MB: warm run is all hits.
        let (links, head) = random_links(10_000, 42);
        let run = WorkstationModel::dec_alpha().run_rank(&links, head, true);
        assert_eq!(run.cache.misses, 0);
        assert!((run.ns_per_vertex - 98.0).abs() < 1e-9);
    }

    #[test]
    fn huge_random_list_approaches_memory_endpoint() {
        // 4M vertices × 4 bytes = 16 MB ≫ 2 MB; random order thrashes.
        let (links, head) = random_links(4_000_000, 7);
        let run = WorkstationModel::dec_alpha().run_rank(&links, head, true);
        assert!(
            run.cache.stats_ratio_check() > 0.8,
            "miss ratio {} too low",
            run.cache.miss_ratio()
        );
        assert!(run.ns_per_vertex > 550.0, "got {}", run.ns_per_vertex);
    }

    #[test]
    fn sequential_layout_stays_fast_even_when_big() {
        // Sequential traversal of a big list: 8 vertices per 32-byte
        // line → 7/8 hit ratio even with no reuse.
        let n = 4_000_000;
        let mut links: Vec<u32> = (1..n as u32).collect();
        links.push(n as u32 - 1);
        let run = WorkstationModel::dec_alpha().run_rank(&links, 0, false);
        assert!(run.cache.miss_ratio() < 0.2);
        assert!(run.ns_per_vertex < 200.0);
    }

    #[test]
    fn scan_costs_more_than_rank() {
        let (links, head) = random_links(10_000, 3);
        let m = WorkstationModel::dec_alpha();
        let r = m.run_rank(&links, head, true);
        let s = m.run_scan(&links, head, true);
        assert!(s.ns_per_vertex > r.ns_per_vertex);
        assert!((s.ns_per_vertex - 200.0).abs() < 1e-9);
    }

    impl CacheStats {
        /// test helper: miss ratio (aliased to keep the assert readable)
        fn stats_ratio_check(&self) -> f64 {
            self.miss_ratio()
        }
    }
}
