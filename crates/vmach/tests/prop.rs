//! Property-based tests for the vector-machine substrate.

use proptest::prelude::*;
use vmach::cache::{CacheConfig, CacheSim};
use vmach::cost::{CostProfile, Kernel, OpCost, ALL_KERNELS, ALL_OPS};
use vmach::memory::BankSim;
use vmach::pipeline::{self, VLEN};
use vmach::{MachineConfig, VectorProc};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gather_equals_index_map(data in proptest::collection::vec(any::<i64>(), 1..200),
                               seed in any::<u64>()) {
        let n = data.len();
        let idx: Vec<u32> = (0..n as u32).map(|i| ((i as u64 ^ seed) % n as u64) as u32).collect();
        let mut p = VectorProc::new(&MachineConfig::c90(1));
        let got = p.gather(&data, &idx);
        let want: Vec<i64> = idx.iter().map(|&i| data[i as usize]).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compress_preserves_kept_subsequence(
        data in proptest::collection::vec(any::<i32>(), 0..300),
        keep_seed in any::<u64>(),
    ) {
        let keep: Vec<bool> = (0..data.len())
            .map(|i| (keep_seed >> (i % 64)) & 1 == 1)
            .collect();
        let mut p = VectorProc::new(&MachineConfig::c90(1));
        let got = p.compress(&data, &keep);
        let want: Vec<i32> = data
            .iter()
            .zip(&keep)
            .filter_map(|(&d, &k)| k.then_some(d))
            .collect();
        let want_len = want.len();
        prop_assert_eq!(got, want);
        // compress_indices is consistent.
        let idx = p.compress_indices(&keep);
        prop_assert_eq!(idx.len(), want_len);
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hockney_cost_is_monotone_in_x(te in 0.01f64..10.0, t0 in 0.0f64..1000.0,
                                     a in 0usize..10_000, b in 0usize..10_000) {
        let c = OpCost::new(te, t0);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(c.at(lo) <= c.at(hi));
    }

    #[test]
    fn contention_scaling_is_linear(factor in 1.0f64..3.0) {
        let base = CostProfile::c90();
        let scaled = base.with_contention(factor);
        for k in ALL_KERNELS {
            prop_assert!((scaled.kernel(k).te - base.kernel(k).te * factor).abs() < 1e-9);
            prop_assert_eq!(scaled.kernel(k).t0, base.kernel(k).t0);
        }
        for o in ALL_OPS {
            prop_assert!((scaled.op(o).te - base.op(o).te * factor).abs() < 1e-9);
        }
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
        let mut c = CacheSim::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 2 });
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.stats().accesses(), addrs.len() as u64);
        let r = c.stats().miss_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn repeated_access_to_same_line_hits(addr in 0u64..1_000_000) {
        let mut c = CacheSim::new(CacheConfig::alpha_board_cache());
        c.access(addr);
        prop_assert!(c.access(addr));
        prop_assert!(c.access(addr | 1)); // same line
    }

    #[test]
    fn bank_stalls_bounded_by_busy_time(
        addrs in proptest::collection::vec(0usize..10_000, 1..500),
        busy in 1u32..16,
    ) {
        let mut sim = BankSim::new(64, busy);
        let stats = sim.run(addrs.iter().copied());
        prop_assert!(stats.stalls_per_access() <= busy as f64);
        prop_assert!(stats.conflicts <= stats.accesses);
    }

    #[test]
    fn strip_time_monotone_in_length(n1 in 1usize..=VLEN, n2 in 1usize..=VLEN) {
        let prog = pipeline::kernels::initial_scan();
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        let t_lo = pipeline::schedule_strip(&prog, lo);
        let t_hi = pipeline::schedule_strip(&prog, hi);
        prop_assert!(t_lo.makespan <= t_hi.makespan);
        // ...but per-element cost is anti-monotone (amortization), up to
        // the ±1-cycle ceil quantization of each instruction's busy time.
        let jitter = 4.0 / lo as f64;
        prop_assert!(t_lo.per_element + jitter >= t_hi.per_element);
    }

    #[test]
    fn kernel_charges_accumulate_linearly(x in 1usize..100_000) {
        let mut p = VectorProc::new(&MachineConfig::c90(1));
        p.charge_kernel(Kernel::InitialScan, x);
        let one = p.elapsed().get();
        p.charge_kernel(Kernel::InitialScan, x);
        prop_assert!((p.elapsed().get() - 2.0 * one).abs() < 1e-6);
    }
}
