//! Memory-bank conflicts: checking the paper's claim that "since we are
//! choosing random positions for the heads of the sublists, systematic
//! memory bank conflicts are unlikely" — and what would happen if the
//! access pattern were strided instead.
//!
//! ```sh
//! cargo run --release --example bank_conflicts
//! ```

use cray_list_ranking::prelude::*;
use vmach::memory::BankSim;

fn stream_stats(label: &str, addrs: impl IntoIterator<Item = usize>) {
    // The C90-class machine: ~1024 banks, each busy ~6 cycles.
    let mut sim = BankSim::new(1024, 6);
    let stats = sim.run(addrs);
    println!(
        "{label:<34} conflicts: {:>6.2}%   stalls/access: {:>5.3}",
        stats.conflict_rate() * 100.0,
        stats.stalls_per_access()
    );
}

fn main() {
    let n = 1 << 20;
    println!("gather streams of {n} accesses against 1024 banks (busy 6 cycles):\n");

    // 1. Sequential sweep: perfect bank interleaving.
    stream_stats("sequential", 0..n);

    // 2. The paper's case: traversing a random-order list. The gather
    //    addresses are the successive link targets.
    let list = gen::random_list(n, 3);
    let mut addrs = Vec::with_capacity(n);
    let mut v = list.head();
    for _ in 0..n {
        addrs.push(v as usize);
        v = list.next_of(v);
    }
    stream_stats("random list traversal", addrs);

    // 3. A power-of-two stride that aliases onto few banks — the
    //    pathology the randomization avoids.
    stream_stats("stride 1024 (bank-aligned)", (0..n).map(|i| i * 1024));

    // 4. An odd stride: coprime with the bank count, conflict-free.
    stream_stats("stride 1023 (coprime)", (0..n).map(|i| i * 1023));

    println!(
        "\nconclusion: the random sublist heads keep conflict rates near the\n\
         uniform-traffic floor, while bank-aligned strides stall on every access —\n\
         the paper was justified in not engineering around bank conflicts."
    );
}
