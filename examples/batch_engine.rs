//! The `rankd` engine through its library API: submit a burst of
//! mixed-size jobs, cancel one, await the rest, print the stats
//! surface.
//!
//! ```sh
//! cargo run --release --example batch_engine
//! ```

use engine::{Engine, EngineConfig, JobError, JobSpec};
use listkit::gen;
use std::sync::Arc;

fn main() {
    let engine = Engine::new(EngineConfig::default().with_workers(2));

    // A big job to keep the workers busy...
    let big = Arc::new(gen::random_list(2_000_000, 1));
    let big_handle = engine.submit(JobSpec::Rank { list: Arc::clone(&big) }).unwrap();

    // ...a burst of small ones behind it...
    let small = Arc::new(gen::random_list(5_000, 2));
    let burst: Vec<_> = (0..32)
        .map(|_| engine.submit(JobSpec::Rank { list: Arc::clone(&small) }).unwrap())
        .collect();

    // ...and one we change our mind about.
    let doomed = engine.submit(JobSpec::Rank { list: Arc::clone(&big) }).unwrap();
    assert!(doomed.cancel(), "still queued, so cancellation lands");
    assert_eq!(doomed.wait().map(|r| r.id).unwrap_err(), JobError::Cancelled);

    let report = big_handle.wait().unwrap();
    println!(
        "big job: n={} via {} in {:.1} ms",
        report.n,
        report.algorithm,
        report.exec_ns as f64 / 1e6
    );
    for h in burst {
        let r = h.wait().unwrap();
        assert_eq!(r.output.ranks().unwrap()[small.head() as usize], 0);
    }

    let stats = engine.shutdown();
    println!("\n{stats}");
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 33);
}
