//! The `rankd` engine through its typed request API: submit a burst of
//! mixed-size, mixed-operator jobs, cancel one, await the rest through
//! typed handles (no output enum to match), print the stats surface.
//!
//! ```sh
//! cargo run --release --example batch_engine
//! ```

use engine::{Engine, EngineConfig, JobError, Request};
use listkit::gen;
use listkit::ops::{Affine, AffineOp, MaxOp};
use std::sync::Arc;

fn main() {
    let engine = Engine::new(EngineConfig::default().with_workers(2));

    // A big job to keep the workers busy...
    let big = Arc::new(gen::random_list(2_000_000, 1));
    let big_handle = engine.submit(Request::rank(Arc::clone(&big))).unwrap();

    // ...a burst of small ones behind it...
    let small = Arc::new(gen::random_list(5_000, 2));
    let burst: Vec<_> =
        (0..32).map(|_| engine.submit(Request::rank(Arc::clone(&small))).unwrap()).collect();

    // ...two generic scans — the engine serves any associative
    // operator, typed end to end: `wait()` returns Vec<i64> directly...
    let values: Arc<Vec<i64>> = Arc::new((0..5_000).map(|i| (i % 101) - 50).collect());
    let max_handle =
        engine.submit(Request::scan(Arc::clone(&small), Arc::clone(&values), MaxOp)).unwrap();
    let coeffs: Arc<Vec<Affine>> =
        Arc::new((0..5_000).map(|i| Affine::new(if i % 16 == 0 { 0 } else { 1 }, i % 7)).collect());
    let affine_handle = engine.submit(Request::scan(Arc::clone(&small), coeffs, AffineOp)).unwrap();

    // ...and one we change our mind about.
    let doomed = engine.submit(Request::rank(Arc::clone(&big))).unwrap();
    assert!(doomed.cancel(), "still queued, so cancellation lands");
    assert_eq!(doomed.wait().map(|r| r.id).unwrap_err(), JobError::Cancelled);

    let report = big_handle.wait().unwrap();
    println!(
        "big job: n={} via {} in {:.1} ms",
        report.n,
        report.algorithm,
        report.exec_ns as f64 / 1e6
    );
    for h in burst {
        let r = h.wait().unwrap();
        assert_eq!(r.output[small.head() as usize], 0);
    }
    let maxes = max_handle.wait().unwrap();
    assert_eq!(maxes.output[small.head() as usize], i64::MIN, "head gets the identity");
    let composed = affine_handle.wait().unwrap();
    assert_eq!(composed.output.len(), 5_000);
    println!("max-scan and affine-scan ran as {} / {}", maxes.op, composed.op);

    let stats = engine.shutdown();
    println!("\n{stats}");
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 35);
}
