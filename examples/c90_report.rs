//! A tour of the simulated Cray C90: run all five algorithms on the
//! same list, print the per-phase cycle breakdown of the Reid-Miller
//! run, its tuned parameters, and the cross-algorithm comparison.
//!
//! ```sh
//! cargo run --release --example c90_report [n]
//! ```

use cray_list_ranking::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let list = gen::random_list(n, 1);
    println!("simulated Cray C90 (4.2 ns clock), random list of {n} vertices\n");

    // Cross-algorithm comparison, 1 CPU.
    println!("{:<18} {:>12} {:>12} {:>12}", "algorithm", "Mcycles", "ns/vertex", "vs serial");
    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list);
    for alg in Algorithm::ALL {
        let run = SimRunner::new(alg, 1).rank(&list);
        println!(
            "{:<18} {:>12.2} {:>12.1} {:>11.1}x",
            alg.name(),
            run.cycles.get() / 1e6,
            run.ns_per_vertex(),
            serial.cycles.get() / run.cycles.get(),
        );
    }

    // Tuned parameters for this size (the paper's §4.4 machinery).
    let params = SimParams::tuned_rank(n, 1);
    println!(
        "\ntuned parameters (1 CPU, rank): m = {} sublists, {} scheduled packs, phase 2 = {:?}",
        params.m,
        params.schedule.len(),
        params.phase2
    );
    if !params.schedule.is_empty() {
        println!("pack points S_i: {:?}", params.schedule);
    }

    // Phase breakdown of the Reid-Miller run.
    let run = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
    println!("\nReid-Miller per-phase cycle breakdown:");
    print!("{}", run.counter.report(4.2));

    // Multiprocessor scaling.
    println!("\nscaling (rank):");
    println!("{:>5} {:>12} {:>10}", "CPUs", "ns/vertex", "speedup");
    let base = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list).cycles;
    for p in [1usize, 2, 4, 8, 16] {
        let run = SimRunner::new(Algorithm::ReidMiller, p).rank(&list);
        println!("{p:>5} {:>12.2} {:>9.2}x", run.ns_per_vertex(), base.get() / run.cycles.get());
    }
}
