//! `chaos_soak` — correctness-under-faults driver for `rankd serve`.
//!
//! Spawns an engine + server in-process with the fault plane armed (or
//! targets an already-faulted daemon with `--socket`), then drives it
//! with N concurrent clients running a mixed PUT / rank-by-handle /
//! mutate / inline-rank workload, every request raced against injected
//! I/O errors, delays, short writes, and worker panics. The invariant
//! under test is the resilience contract:
//!
//! * **Byte-correct or typed-error.** Every successful reply is
//!   checked byte-for-byte against a serial oracle (a from-scratch
//!   [`HostRunner`] solve of the client's local mirror). Every failed
//!   request must carry a *typed* error the client understands —
//!   an injected transport failure or a known protocol error code.
//!   An unknown error code or a protocol violation aborts the soak.
//! * **Exact store accounting.** Resident handles are
//!   connection-scoped; once every client has disconnected, the store
//!   must report zero resident datasets and zero resident bytes.
//! * **Clean daemon exit.** After the soak the server drains and
//!   `Server::run` returns `Ok` — no handler thread died, no panic
//!   escaped the isolation boundaries.
//!
//! Clients heal with the library's own [`RetryPolicy`] (distinct
//! jitter seeds per client) plus a re-PUT state machine: any surfaced
//! transport error or stale handle re-uploads the local mirror under a
//! fresh handle, so the oracle never drifts from the server.
//!
//! `--pipeline` switches the workload to protocol v6 pipelining: each
//! client keeps up to 8 request-id-tagged rank-by-handle frames in
//! flight, so injected short reads/writes land *mid-pipeline* and a
//! killed connection forfeits a whole outstanding window (the client
//! resyncs and the accounting assertions still must hold exactly).
//! `--tcp` runs the same storm through the daemon's TCP listener.
//!
//! ```sh
//! cargo run --release --example chaos_soak -- --clients 4 --requests 80
//! cargo run --release --example chaos_soak -- --fault \
//!     "io_err=0.02,delay=2ms@0.05,short_write=0.02,exec_panic=0.05" \
//!     --clients 8 --requests 100
//! cargo run --release --example chaos_soak -- --pipeline --tcp \
//!     --clients 4 --requests 200
//! ```

#[cfg(not(unix))]
fn main() {
    eprintln!("chaos_soak requires unix domain sockets");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    use engine::client::{Client, ClientError, RetryPolicy};
    use engine::protocol::{self, ErrorCode, FrameKind, ReqFlags};
    use engine::server::{ServeConfig, Server};
    use engine::{Engine, EngineConfig, FaultConfig, FaultPlane};
    use listkit::dynamic::{Edit, MutableList};
    use listkit::gen;
    use listrank::{Algorithm, HostRunner};
    use std::sync::Arc;
    use std::time::Instant;

    let mut clients = 4usize;
    let mut requests = 60usize;
    let mut n = 2_000usize;
    let mut fault_spec = String::from("default");
    let mut socket: Option<String> = None;
    let mut pipeline = false;
    let mut tcp = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => clients = val("--clients").parse().expect("count"),
            "--requests" => requests = val("--requests").parse().expect("count"),
            "--n" => n = val("--n").parse().expect("vertices"),
            "--fault" => fault_spec = val("--fault"),
            "--socket" => socket = Some(val("--socket")),
            "--pipeline" => pipeline = true,
            "--tcp" => tcp = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nUSAGE: chaos_soak [--clients N] [--requests M] [--n V] [--fault SPEC] [--pipeline] [--tcp] [--socket PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    // Injected worker panics are caught by the engine's isolation
    // boundary, but the default panic hook would still spam stderr for
    // each one. Silence exactly those; real panics keep the default
    // report (and fail the soak via the oracle or the clean-exit
    // assertions).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|m| m.contains("injected"))
            .or_else(|| info.payload().downcast_ref::<String>().map(|m| m.contains("injected")))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    if tcp && socket.is_some() {
        eprintln!("--tcp drives the in-process daemon's TCP listener; with an external daemon pass --socket only");
        std::process::exit(2);
    }

    // In-process daemon with the fault plane armed, unless pointed at
    // an external (presumably already-faulted) daemon.
    let mut spawned = None;
    let mut tcp_addr: Option<String> = None;
    let path = match socket {
        Some(p) => p,
        None => {
            let cfg = FaultConfig::parse(&fault_spec).unwrap_or_else(|e| {
                eprintln!("bad --fault spec: {e}");
                std::process::exit(2);
            });
            let plane = Arc::new(FaultPlane::new(cfg));
            let p = std::env::temp_dir()
                .join(format!("rankd-chaos-soak-{}.sock", std::process::id()))
                .to_string_lossy()
                .into_owned();
            let engine =
                Arc::new(Engine::new(EngineConfig::default().with_fault(Arc::clone(&plane))));
            let mut serve_cfg = ServeConfig::new(&p).with_fault(Arc::clone(&plane));
            if tcp {
                serve_cfg = serve_cfg.with_tcp(Some("127.0.0.1:0".to_string()));
            }
            let server = Server::bind(Arc::clone(&engine), serve_cfg).expect("bind soak socket");
            tcp_addr = server.tcp_local_addr().map(|a| a.to_string());
            let control = server.control();
            let join = std::thread::spawn(move || server.run());
            spawned = Some((engine, control, join, plane));
            p
        }
    };
    let connect = |tcp_addr: &Option<String>, path: &str, seed: u64| -> Client {
        let policy = RetryPolicy::default().with_seed(seed);
        match tcp_addr {
            Some(addr) => {
                Client::connect_tcp_with_retry(addr.as_str(), policy).expect("connect tcp")
            }
            None => Client::connect_with_retry(path, policy).expect("connect"),
        }
    };

    let workload = if pipeline { "pipelined (depth 8)" } else { "serial" };
    let transport = match &tcp_addr {
        Some(addr) => format!("tcp {addr}"),
        None => format!("socket {path}"),
    };
    println!(
        "chaos_soak: {clients} clients × {requests} requests, {n}-vertex lists, {workload} workload, faults [{fault_spec}], {transport}"
    );
    let t0 = Instant::now();

    // Per-client tallies: (ok replies, typed server errors, surfaced
    // transport errors, re-PUT resyncs).
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let path = path.clone();
            let tcp_addr = tcp_addr.clone();
            std::thread::spawn(move || {
                let mut client = connect(&tcp_addr, &path, 0xC4A05_u64 ^ (c as u64) << 8);
                let runner = HostRunner::new(Algorithm::ReidMiller);

                // The serial oracle: a local mirror of the resident
                // dataset, solved from scratch after every mutation.
                let fixed = gen::random_list(n, c as u64 * 7919);
                let mut mirror = MutableList::from_list(&fixed);
                let mut expected = runner.rank(&fixed);
                let mut ok = 0u64;
                let mut typed = 0u64;
                let mut transport = 0u64;
                let mut resyncs = 0u64;

                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (c as u64) << 17;
                let mut pick = move |m: u64| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (rng >> 33) % m.max(1)
                };

                // Upload the mirror; retried here (and on every
                // resync) because an injected fault can kill the
                // connection mid-PUT — the broken connection drops its
                // handles server-side, so a retried PUT never leaks.
                let reput = |client: &mut Client, mirror: &MutableList| -> u64 {
                    let snapshot = mirror.snapshot();
                    for _ in 0..200 {
                        match client.put(&snapshot) {
                            Ok(receipt) => return receipt.handle,
                            Err(ClientError::Io(_)) => {
                                let _ = client.reconnect();
                            }
                            Err(e) if e.server_code().is_some() => {
                                std::thread::sleep(std::time::Duration::from_millis(5));
                            }
                            Err(e) => panic!("un-typed PUT failure: {e}"),
                        }
                    }
                    panic!("PUT could not be placed in 200 attempts");
                };
                let mut handle = reput(&mut client, &mirror);

                if pipeline {
                    // Pipelined workload: up to 8 request-id-tagged
                    // rank-by-handle frames in flight. A connection
                    // killed mid-pipeline forfeits its outstanding
                    // window; the client resyncs (reconnect + re-PUT)
                    // and the oracle never drifts.
                    const DEPTH: usize = 8;
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    let mut next_id = 1u64;
                    while received < requests {
                        let mut broke = false;
                        while sent - received < DEPTH && sent < requests {
                            let mut flags = ReqFlags::default().with_request_id(next_id);
                            if sent.is_multiple_of(3) {
                                flags = flags.with_deadline_ms(30_000);
                            }
                            let body = protocol::rank_h_body_flags(handle, flags);
                            match client.send_encoded(FrameKind::RankH, &body) {
                                Ok(()) => {
                                    sent += 1;
                                    next_id += 1;
                                }
                                Err(_) => {
                                    broke = true;
                                    break;
                                }
                            }
                        }
                        if !broke {
                            match client.recv_pipelined::<u64>() {
                                Ok((_id, Ok(served))) => {
                                    assert_eq!(
                                        served.output, expected,
                                        "pipelined rank parity (client {c})"
                                    );
                                    ok += 1;
                                    received += 1;
                                }
                                Ok((_id, Err(e))) => {
                                    match e.server_code() {
                                        Some(ErrorCode::StaleHandle) => {
                                            handle = reput(&mut client, &mirror);
                                            resyncs += 1;
                                        }
                                        Some(_) => {}
                                        None => panic!("un-typed pipelined refusal: {e}"),
                                    }
                                    typed += 1;
                                    received += 1;
                                }
                                Err(ClientError::Io(_)) => broke = true,
                                Err(e) => panic!("un-typed pipelined failure: {e}"),
                            }
                        }
                        if broke {
                            transport += 1;
                            received = sent;
                            let _ = client.reconnect();
                            handle = reput(&mut client, &mirror);
                            resyncs += 1;
                        }
                    }
                    let _ = client.drop_handle(handle);
                    return (ok, typed, transport, resyncs);
                }

                for r in 0..requests {
                    if r % 5 == 4 {
                        // MUTATE — never retried by the client (a
                        // replayed batch could double-apply). The
                        // mirror only advances on a confirmed apply;
                        // any failure resyncs server state from the
                        // unchanged mirror under a fresh handle.
                        let len = mirror.len() as u64;
                        let a = pick(len) as u32;
                        let mut b = pick(len) as u32;
                        if b == a {
                            b = (a + 1) % len as u32;
                        }
                        let after = if pick(8) == 0 { None } else { Some(b) };
                        let edits = [
                            Edit::Splice { first: a, last: a, after },
                            Edit::Delete { v: pick(len) as u32 },
                            Edit::Append { count: 1 + pick(8) as u32 },
                        ];
                        let body = protocol::mutate_body(handle, &edits);
                        match client.mutate_encoded(&body) {
                            Ok(reply) if reply.applied as usize == edits.len() => {
                                mirror.apply(&edits).expect("valid batch");
                                assert_eq!(reply.len, mirror.len() as u64, "length parity");
                                expected = runner.rank(&mirror.snapshot());
                                ok += 1;
                            }
                            Ok(reply) => {
                                panic!("partial mutate: {} of {} applied", reply.applied, 3)
                            }
                            Err(e) => {
                                match &e {
                                    ClientError::Io(_) => {
                                        transport += 1;
                                        let _ = client.reconnect();
                                    }
                                    _ if e.server_code().is_some() => typed += 1,
                                    _ => panic!("un-typed mutate failure: {e}"),
                                }
                                handle = reput(&mut client, &mirror);
                                resyncs += 1;
                            }
                        }
                    } else {
                        // Rank by handle; every third request carries
                        // a deadline to exercise the v5 path.
                        let reply = if r % 3 == 0 {
                            client.rank_h_with_deadline(handle, 30_000)
                        } else {
                            let body = protocol::rank_h_body(handle, false);
                            client.request_encoded::<u64>(FrameKind::RankH, &body)
                        };
                        match reply {
                            Ok(served) => {
                                assert_eq!(served.output, expected, "rank parity (client {c})");
                                ok += 1;
                            }
                            Err(ClientError::Io(_)) => {
                                // Retries exhausted; the dead
                                // connection took our handle with it.
                                transport += 1;
                                let _ = client.reconnect();
                                handle = reput(&mut client, &mirror);
                                resyncs += 1;
                            }
                            Err(e) => match e.server_code() {
                                Some(ErrorCode::StaleHandle) => {
                                    // A mid-burst reconnect inside the
                                    // retry loop invalidated the
                                    // handle.
                                    typed += 1;
                                    handle = reput(&mut client, &mirror);
                                    resyncs += 1;
                                }
                                Some(_) => typed += 1,
                                None => panic!("un-typed rank failure: {e}"),
                            },
                        }
                    }
                }

                // Best-effort drop; a failed drop is fine because the
                // disconnect below releases the handle anyway — the
                // store-accounting assertion at the end proves it.
                let _ = client.drop_handle(handle);
                (ok, typed, transport, resyncs)
            })
        })
        .collect();

    let (mut ok, mut typed, mut transport, mut resyncs) = (0u64, 0u64, 0u64, 0u64);
    for w in workers {
        let (o, t, x, s) = w.join().expect("client thread");
        ok += o;
        typed += t;
        transport += x;
        resyncs += s;
    }
    let elapsed = t0.elapsed();
    println!(
        "{} requests in {:.3}s — {ok} byte-checked replies, {typed} typed errors, {transport} transport errors, {resyncs} resyncs",
        clients * requests,
        elapsed.as_secs_f64(),
    );

    // Exact store accounting: every connection is closed, so the store
    // must be empty — a leak here means a fault path dropped a handle
    // on the floor without releasing its budget.
    let mut probe = connect(&tcp_addr, &path, 0x960BE_u64);
    // The probe itself runs through the fault plane, so ride out any
    // injected error on the stats exchange too.
    let mut attempts = 0;
    let v2 = loop {
        match probe.stats_v2() {
            Ok(v2) => break v2,
            Err(e) => {
                attempts += 1;
                assert!(attempts < 20, "stats probe could not get through: {e}");
                let _ = probe.reconnect();
            }
        }
    };
    assert_eq!(v2.store.resident_count, 0, "resident datasets after full disconnect");
    assert_eq!(v2.store.resident_bytes, 0, "resident bytes after full disconnect");
    println!(
        "store accounting exact: {} puts / {} drops, 0 resident after disconnect",
        v2.store.puts, v2.store.drops
    );
    println!(
        "faults injected: {} io, {} delays, {} short writes, {} exec panics, {} store; {} panics recovered, {} workers respawned, {} deadlines expired",
        v2.fault.injected_io_errors,
        v2.fault.injected_delays,
        v2.fault.injected_short_writes,
        v2.fault.injected_exec_panics,
        v2.fault.injected_store_errors,
        v2.fault.panics_recovered,
        v2.fault.workers_respawned,
        v2.fault.deadline_expired,
    );
    drop(probe);

    if let Some((engine, control, join, plane)) = spawned {
        control.request_shutdown();
        join.join().expect("server thread").expect("server run — clean daemon exit");
        println!("daemon exited cleanly with {} total injected faults", plane.snapshot().total());
        drop(engine);
    }
    println!("chaos_soak PASS");
}
