//! The paper's motivating application (§2): "List ranking finds for
//! each vertex the number of vertices that precede it ... This
//! information, for example, can be used to reorder the vertices of a
//! linked list into an array in one parallel step."
//!
//! Scenario: a text's paragraphs arrive as a linked list scattered
//! through memory (e.g. after many insertions); one parallel rank
//! plus one parallel scatter lays them out contiguously.
//!
//! ```sh
//! cargo run --release --example list_to_array
//! ```

use cray_list_ranking::prelude::*;
use rayon::prelude::*;

fn main() {
    // Build a "document" whose chunks were inserted out of order: the
    // linked list knows the logical order, memory does not.
    let n = 200_000;
    let list = gen::random_list(n, 7);
    let chunks: Vec<String> = (0..n).map(|v| format!("chunk-{v:06}")).collect();

    // One parallel rank ...
    let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);

    // ... and one parallel scatter into final positions.
    let mut in_order: Vec<String> = vec![String::new(); n];
    // (Use the rank as a permutation: collect (rank, chunk) pairs and
    // sort-free scatter via indexed write.)
    let mut pairs: Vec<(u64, usize)> = ranks.par_iter().enumerate().map(|(v, &r)| (r, v)).collect();
    pairs.par_sort_unstable();
    in_order
        .par_iter_mut()
        .zip(pairs.par_iter())
        .for_each(|(slot, &(_, v))| *slot = chunks[v].clone());

    // Verify against a serial walk.
    let serial_order: Vec<&str> = list.iter().map(|v| chunks[v as usize].as_str()).collect();
    assert!(in_order.iter().map(String::as_str).eq(serial_order));
    println!(
        "reordered {n} chunks; first = {}, last = {}",
        in_order.first().unwrap(),
        in_order.last().unwrap()
    );

    // The same trick works for plain data with listkit's helper:
    let data: Vec<i64> = (0..n as i64).collect();
    let reordered = listkit::serial::reorder_by_rank(&ranks, &data);
    println!("numeric payload head-of-list value: {}", reordered[0]);
}
