//! Measure the incremental-maintenance crossover: after a mutation
//! batch dirties a fraction of a resident dataset's shards, when does
//! patching the dirty shards in place beat rebuilding the sharded
//! decomposition from scratch?
//!
//! The benchmark builds a 2^22-vertex random list, shards it the way
//! the engine's artifact cache does, then for each target dirty
//! fraction applies single-vertex splices spread across the list until
//! that many shards are dirty and times both maintenance strategies on
//! identical inputs. It also reports what a warmed-up
//! [`engine::Planner`] chooses at each fraction, so the numbers in the
//! README's "Dynamic lists" section can be regenerated with:
//!
//! ```text
//! cargo run --release --example mutate_bench
//! ```
//!
//! Flags: `--n <vertices>` (default 2^22), `--shard-size <vertices>`
//! (default 2^16), `--lanes <k>` (default 8), `--reps <r>` (default 5,
//! best-of timing).

use engine::Planner;
use listkit::dynamic::{Edit, MutableList};
use listkit::sharded::ShardedList;
use listkit::{gen, LinkedList};
use std::time::Instant;

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        })
        .unwrap_or(default)
}

/// Splice one vertex out of each target shard so the batch dirties
/// (at least) the requested shard count, spread across the list the
/// way real edit traffic would be.
fn batch_dirtying(
    mutable: &MutableList,
    shard_size: usize,
    target_shards: usize,
    total_shards: usize,
) -> Vec<Edit> {
    let stride = total_shards / target_shards.max(1);
    (0..target_shards)
        .map(|i| {
            let v = ((i * stride.max(1)) * shard_size + shard_size / 2) % mutable.len();
            let after = (v + 7) % mutable.len();
            let after = if after == v { (v + 1) % mutable.len() } else { after };
            Edit::Splice { first: v as u32, last: v as u32, after: Some(after as u32) }
        })
        .collect()
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = parse_flag(&args, "--n", 1 << 22);
    let shard_size = parse_flag(&args, "--shard-size", 1 << 16);
    let lanes = parse_flag(&args, "--lanes", 8);
    let reps = parse_flag(&args, "--reps", 5).max(1);
    let shards = n.div_ceil(shard_size);

    println!(
        "mutate_bench: n={n} ({} shards of {shard_size}), {lanes} lanes, best of {reps}",
        shards
    );

    // Blocked is the serving-representative topology (the paper's
    // lists have run-locality, so the contracted boundary list is
    // small); random is the adversarial one (fragments ≈ n, so the
    // boundary re-assembly dominates any patch).
    use listkit::gen::Layout;
    for (topo, list) in [
        ("blocked(4096)", gen::list_with_layout(n, Layout::Blocked(4096), 0xC90)),
        ("random", gen::random_list(n, 0xC90)),
    ] {
        let base = ShardedList::build(&list, shard_size).with_lanes(lanes);
        let planner = Planner::new(num_threads());
        println!("\ntopology {topo}: {} fragments", base.fragment_count());
        println!(
            "{:>8} {:>7} {:>12} {:>12} {:>9} {:>12}",
            "dirty", "dirty%", "patch ms", "rebuild ms", "speedup", "planner"
        );
        for &target in &[1usize, 2, 3, 6, 13, 26, 38, 51, 64] {
            let target = target.min(shards);
            let mut mutable = MutableList::from_list(&list);
            let edits = batch_dirtying(&mutable, shard_size, target, shards);
            let report = mutable.apply(&edits).expect("bench batch is valid");
            let dirty = report.dirty_shards(shard_size);
            let snapshot: LinkedList = mutable.snapshot();

            let (patch_ms, patched) = best_of(reps, || base.rebuild_dirty(&snapshot, &dirty));
            let (rebuild_ms, rebuilt) =
                best_of(reps, || ShardedList::build(&snapshot, shard_size).with_lanes(lanes));
            assert_eq!(patched.rank(), rebuilt.rank(), "patch and rebuild must agree");

            // Warm the planner's history with the measurements, then
            // ask what it would dispatch for this dirty fraction.
            planner.record_maintenance(
                n,
                shard_size,
                base.fragment_count(),
                dirty.len(),
                true,
                (patch_ms * 1e6) as u64,
            );
            planner.record_maintenance(
                n,
                shard_size,
                base.fragment_count(),
                dirty.len(),
                false,
                (rebuild_ms * 1e6) as u64,
            );
            let decision =
                planner.choose_maintenance(n, shard_size, base.fragment_count(), dirty.len());
            println!(
                "{:>8} {:>6.1}% {:>12.2} {:>12.2} {:>8.2}x {:>12}",
                dirty.len(),
                100.0 * dirty.len() as f64 / shards as f64,
                patch_ms,
                rebuild_ms,
                rebuild_ms / patch_ms,
                if decision.incremental { "incremental" } else { "rebuild" }
            );
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}
