//! Quickstart: rank and scan a linked list with the Reid-Miller
//! algorithm on both backends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cray_list_ranking::prelude::*;

fn main() {
    // A one-million-vertex list laid out in random memory order — the
    // paper's workload and the hard case for every memory system.
    let n = 1_000_000;
    let list = gen::random_list(n, 42);
    println!("list: {n} vertices, head {}, tail {}", list.head(), list.tail());

    // --- List ranking on the host backend (rayon).
    let t0 = std::time::Instant::now();
    let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
    println!(
        "host rank: {:.1} ms ({:.1} ns/vertex) — head rank {}, tail rank {}",
        t0.elapsed().as_secs_f64() * 1e3,
        t0.elapsed().as_nanos() as f64 / n as f64,
        ranks[list.head() as usize],
        ranks[list.tail() as usize],
    );

    // --- List scan (prefix sums over the list order) with values.
    let values: Vec<i64> = (0..n as i64).map(|i| i % 10).collect();
    let scan = HostRunner::new(Algorithm::ReidMiller).scan(&list, &values, &AddOp);
    println!("host scan: prefix at tail = {}", scan[list.tail() as usize]);

    // --- The same rank on the simulated Cray C90, 1 and 8 CPUs.
    for p in [1usize, 8] {
        let run = SimRunner::new(Algorithm::ReidMiller, p).rank(&list);
        assert_eq!(run.out, ranks, "backends must agree");
        println!(
            "simulated C90, {p} CPU(s): {:.2} Mcycles = {:.1} ns/vertex",
            run.cycles.get() / 1e6,
            run.ns_per_vertex(),
        );
    }

    // --- And the serial baseline for contrast (Table I's 177 ns).
    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list);
    println!("simulated C90 serial: {:.1} ns/vertex", serial.ns_per_vertex());
}
