//! Solving first-order linear recurrences `x_i = a_i·x_{i−1} + b_i` in
//! parallel via affine-composition list scan — the workload of the
//! paper's reference [5] (Blelloch–Chatterjee–Zagha "loop raking").
//!
//! ```sh
//! cargo run --release --example recurrences
//! ```

use cray_list_ranking::applications::recurrence;
use cray_list_ranking::prelude::*;
use listkit::ops::Affine;
use std::time::Instant;

fn main() {
    let n = 2_000_000;
    // A damped noisy accumulator: x_i = a_i x_{i-1} + b_i with small
    // integer coefficients (wrapping i64 arithmetic).
    let coeffs: Vec<Affine> =
        (0..n).map(|i| Affine::new(if i % 16 == 0 { 0 } else { 1 }, (i % 7) as i64 - 3)).collect();
    let runner = HostRunner::new(Algorithm::ReidMiller);

    let t0 = Instant::now();
    let xs = recurrence::solve(&coeffs, 100, &runner);
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let reference = recurrence::solve_serial(&coeffs, 100);
    let ser_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(xs, reference);
    println!("recurrence of length {n}: parallel {par_ms:.1} ms, serial {ser_ms:.1} ms");
    println!("x[0] = {}, x[n/2] = {}, x[n-1] = {}", xs[0], xs[n / 2], xs[n - 1]);

    // The same solver runs over an arbitrary *linked-list* order — the
    // recurrence follows the list, not the array.
    let list = gen::random_list(100_000, 9);
    let lc: Vec<Affine> = (0..100_000).map(|i| Affine::new(1, (i % 5) as i64)).collect();
    let on_list = recurrence::solve_on_list(&list, &lc, 0, &runner);
    assert_eq!(on_list, recurrence::solve_serial_on_list(&list, &lc, 0));
    println!(
        "list-ordered recurrence verified; value at list tail = {}",
        on_list[list.tail() as usize]
    );
}
