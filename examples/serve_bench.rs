//! `serve_bench` — workload driver for the `rankd serve` socket layer.
//!
//! Spawns an engine + server in-process on a temporary socket (or
//! targets an already-running daemon with `--socket`), then drives it
//! with N concurrent clients × M rank/scan requests each, checks
//! every reply byte-for-byte against a local `HostRunner`, and reports
//! request throughput plus the serving-layer counters — i.e. what the
//! wire protocol and the per-client handler threads cost on top of the
//! bare engine.
//!
//! Three query modes isolate where the per-request time goes:
//!
//! * `--mode oneshot` (default) — a fresh random list per request, the
//!   original mixed workload: encode + ship + validate + solve every
//!   time.
//! * `--mode inline` — one list per client, re-shipped inline with
//!   every request: the server re-validates and re-plans the same
//!   dataset each time.
//! * `--mode handle` — one PUT per client, then every request queries
//!   by 8-byte handle: the resident dataset store's repeated-query
//!   path (protocol v3).
//! * `--mode mutate` — one PUT per client, then a mutate-then-query
//!   loop: every `--mutate-every`-th request sends a MUTATE batch
//!   (splice + delete + append), the rest rank by handle. Each client
//!   keeps a local mirror of its dataset and checks every rank reply
//!   byte-for-byte against a from-scratch solve of the mirror — the
//!   dynamic-lists path (protocol v4) under live traffic.
//! * `--mode pipeline` — one PUT per client, then rank-by-handle with
//!   up to `--pipeline-depth` requests in flight on one connection
//!   (protocol v6 request ids). With no explicit depth the bench
//!   sweeps depths {1, 4, 8, 16} and reports the speedup over the
//!   depth-1 (serial) baseline; every reply is still checked against
//!   the local oracle, so the speedup comes with byte parity.
//!
//! `--tcp` runs the same workload over the daemon's TCP listener
//! (in-process servers bind `127.0.0.1:0`) instead of the Unix
//! socket.
//!
//! Latency histograms time the round trip from *after* the request
//! body is encoded to the decoded reply, so client-side encode cost
//! never pollutes the serving-layer numbers.
//!
//! ```sh
//! cargo run --release --example serve_bench -- --clients 8 --requests 50
//! cargo run --release --example serve_bench -- --mode handle --n 8388608 \
//!     --clients 1 --requests 32
//! cargo run --release --example serve_bench -- --mode mutate --n 100000 \
//!     --clients 4 --requests 40 --mutate-every 4
//! cargo run --release --example serve_bench -- --mode pipeline --tcp \
//!     --clients 2 --requests 64 --n 20000
//! ```

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_bench requires unix domain sockets");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    use engine::client::Client;
    use engine::protocol::{self, FrameKind, WireOp};
    use engine::server::{ServeConfig, Server};
    use engine::{Engine, EngineConfig};
    use listkit::dynamic::{Edit, MutableList};
    use listkit::gen;
    use listkit::ops::AddOp;
    use listrank::{Algorithm, HostRunner};
    use std::sync::Arc;
    use std::time::Instant;

    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Oneshot,
        Inline,
        Handle,
        Mutate,
        Pipeline,
    }

    /// Where the client threads connect: the daemon's Unix socket or
    /// its TCP listener — same protocol, same parity checks.
    #[derive(Clone)]
    enum Target {
        Unix(String),
        Tcp(String),
    }

    impl Target {
        fn connect(&self) -> Client {
            match self {
                Target::Unix(p) => Client::connect(p).expect("connect"),
                Target::Tcp(a) => Client::connect_tcp(a.as_str()).expect("connect tcp"),
            }
        }

        fn describe(&self) -> String {
            match self {
                Target::Unix(p) => format!("socket {p}"),
                Target::Tcp(a) => format!("tcp {a}"),
            }
        }
    }

    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut n = 20_000usize;
    let mut socket: Option<String> = None;
    let mut mode = Mode::Oneshot;
    let mut mutate_every = 4usize;
    let mut pipeline_depth = 0usize; // 0 = sweep {1, 4, 8, 16}
    let mut tcp = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => clients = val("--clients").parse().expect("count"),
            "--requests" => requests = val("--requests").parse().expect("count"),
            "--n" => n = val("--n").parse().expect("vertices"),
            "--socket" => socket = Some(val("--socket")),
            "--mode" => {
                mode = match val("--mode").as_str() {
                    "oneshot" => Mode::Oneshot,
                    "inline" => Mode::Inline,
                    "handle" => Mode::Handle,
                    "mutate" => Mode::Mutate,
                    "pipeline" => Mode::Pipeline,
                    other => {
                        eprintln!(
                            "unknown --mode {other} (want oneshot|inline|handle|mutate|pipeline)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--pipeline-depth" => {
                pipeline_depth = val("--pipeline-depth").parse().expect("depth");
            }
            "--tcp" => tcp = true,
            "--mutate-every" => {
                mutate_every = val("--mutate-every").parse().expect("ratio");
                if mutate_every == 0 {
                    eprintln!("--mutate-every must be ≥ 1");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nUSAGE: serve_bench [--clients N] [--requests M] [--n V] [--mode oneshot|inline|handle|mutate|pipeline] [--mutate-every K] [--pipeline-depth D] [--tcp] [--socket PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if tcp && socket.is_some() {
        eprintln!("--tcp drives the in-process daemon's TCP listener; with an external daemon pass --socket only");
        std::process::exit(2);
    }

    // In-process daemon unless pointed at an external one.
    let mut spawned = None;
    let mut tcp_addr = None;
    let path = match socket {
        Some(p) => p,
        None => {
            let p = std::env::temp_dir()
                .join(format!("rankd-serve-bench-{}.sock", std::process::id()))
                .to_string_lossy()
                .into_owned();
            let engine = Arc::new(Engine::new(EngineConfig::default()));
            let mut cfg = ServeConfig::new(&p);
            if tcp {
                cfg = cfg.with_tcp(Some("127.0.0.1:0".to_string()));
            }
            let server = Server::bind(Arc::clone(&engine), cfg).expect("bind bench socket");
            tcp_addr = server.tcp_local_addr().map(|a| a.to_string());
            let control = server.control();
            let join = std::thread::spawn(move || server.run());
            spawned = Some((engine, control, join));
            p
        }
    };
    let target = match tcp_addr {
        Some(addr) => Target::Tcp(addr),
        None => Target::Unix(path.clone()),
    };

    // Pipelined mode has its own driver: a windowed in-flight loop per
    // connection, swept over depths so the serial baseline and the
    // pipelined runs come from the same process and dataset shapes.
    if mode == Mode::Pipeline {
        let depths: Vec<usize> =
            if pipeline_depth == 0 { vec![1, 4, 8, 16] } else { vec![pipeline_depth] };
        println!(
            "serve_bench: {clients} clients × {requests} requests, {n}-vertex resident lists, mode pipeline, depths {depths:?}, {}",
            target.describe()
        );
        let mut base_rps: Option<f64> = None;
        for &depth in &depths {
            assert!(depth >= 1, "--pipeline-depth must be ≥ 1");
            let t_depth = Instant::now();
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let target = target.clone();
                    std::thread::spawn(move || {
                        let mut client = target.connect();
                        let runner = HostRunner::new(Algorithm::ReidMiller);
                        let fixed = gen::random_list(n, c as u64 * 1009);
                        let expected = runner.rank(&fixed);
                        let handle = client.put(&fixed).expect("put").handle;
                        let mut inflight = 0usize;
                        let mut next_id = 1u64;
                        let mut done = 0usize;
                        while done < requests {
                            while inflight < depth && next_id as usize <= requests {
                                client.send_rank_h(handle, next_id).expect("pipelined send");
                                next_id += 1;
                                inflight += 1;
                            }
                            let (_id, res) = client.recv_pipelined::<u64>().expect("recv");
                            let served = res.expect("pipelined request served");
                            assert_eq!(served.output, expected, "pipelined rank parity");
                            inflight -= 1;
                            done += 1;
                        }
                        client.drop_handle(handle).expect("drop handle");
                        (requests * n) as u64
                    })
                })
                .collect();
            let mut elements = 0u64;
            for w in workers {
                elements += w.join().expect("client");
            }
            let elapsed = t_depth.elapsed().as_secs_f64();
            let total = clients * requests;
            let rps = total as f64 / elapsed;
            let base = *base_rps.get_or_insert(rps);
            println!(
                "pipeline depth {depth:>2}: {total} requests ({elements} vertices) in {elapsed:.3}s — {rps:.1} req/s, {:.2}× vs depth {}, all parity-checked",
                rps / base,
                depths[0]
            );
        }

        let mut probe = target.connect();
        let v2 = probe.stats_v2().expect("stats_v2");
        let sc = &v2.sched;
        println!(
            "scheduler gauges: {} pipelined requests, max depth {}, {} reordered replies, {} interactive / {} batch dispatched",
            sc.pipelined_requests,
            sc.max_pipeline_depth,
            sc.reply_reorders,
            sc.dispatched_interactive,
            sc.dispatched_batch
        );
        drop(probe);
        if let Some((engine, control, join)) = spawned {
            control.request_shutdown();
            join.join().expect("server thread").expect("server run");
            drop(engine);
        }
        return;
    }

    let mode_name = match mode {
        Mode::Oneshot => "oneshot",
        Mode::Inline => "inline",
        Mode::Handle => "handle",
        Mode::Mutate => "mutate",
        Mode::Pipeline => unreachable!("pipeline mode returned above"),
    };
    match mode {
        Mode::Mutate => println!(
            "serve_bench: {clients} clients × {requests} requests, {n}-vertex lists, mode mutate (1 mutation per {mutate_every} requests), {}",
            target.describe()
        ),
        _ => println!(
            "serve_bench: {clients} clients × {requests} requests, {n}-vertex lists, mode {mode_name}, {}",
            target.describe()
        ),
    }
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let target = target.clone();
            std::thread::spawn(move || {
                let mut client = target.connect();
                let runner = HostRunner::new(Algorithm::ReidMiller);
                let mut elements = 0u64;
                // Client-observed wall-clock latency per op kind,
                // timed from after the request body is encoded.
                let mut rank_lat = engine::Histogram::new();
                let mut scan_lat = engine::Histogram::new();
                let mut mut_lat = engine::Histogram::new();
                let values: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();

                if mode == Mode::Mutate {
                    // Mutate-then-query loop: the client mirrors its
                    // dataset locally, applies the same edit batches to
                    // the mirror, and checks every rank reply against a
                    // from-scratch solve of the mirror — end-to-end
                    // byte-identity under live mutation traffic.
                    let fixed = gen::random_list(n, c as u64 * 1009);
                    let handle = client.put(&fixed).expect("put").handle;
                    let mut mirror = MutableList::from_list(&fixed);
                    let mut expected = runner.rank(&fixed);
                    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (c as u64) << 17;
                    let mut pick = move |m: u64| {
                        rng =
                            rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        (rng >> 33) % m.max(1)
                    };
                    for r in 0..requests {
                        if r % mutate_every == 0 {
                            let len = mirror.len() as u64;
                            let a = pick(len) as u32;
                            let mut b = pick(len) as u32;
                            if b == a {
                                b = (a + 1) % len as u32;
                            }
                            let after = if pick(8) == 0 { None } else { Some(b) };
                            let edits = [
                                Edit::Splice { first: a, last: a, after },
                                Edit::Delete { v: pick(len) as u32 },
                                Edit::Append { count: 1 + pick(8) as u32 },
                            ];
                            mirror.apply(&edits).expect("valid batch");
                            let body = protocol::mutate_body(handle, &edits);
                            let t_req = Instant::now();
                            let reply = client.mutate_encoded(&body).expect("mutate");
                            mut_lat.record(t_req.elapsed().as_nanos() as u64);
                            assert_eq!(reply.applied, 3, "whole batch applied");
                            assert_eq!(reply.len, mirror.len() as u64, "length parity");
                            expected = runner.rank(&mirror.snapshot());
                        } else {
                            let body = protocol::rank_h_body(handle, true);
                            let t_req = Instant::now();
                            let served = client
                                .request_encoded::<u64>(FrameKind::RankH, &body)
                                .expect("rank_h");
                            rank_lat.record(t_req.elapsed().as_nanos() as u64);
                            assert_eq!(served.output, expected, "post-mutation rank parity");
                        }
                        elements += mirror.len() as u64;
                    }
                    client.drop_handle(handle).expect("drop handle");
                    return (elements, rank_lat, scan_lat, mut_lat);
                }

                // Inline/handle modes query one dataset repeatedly, so
                // the expected outputs (and the request bodies, minus
                // what the mode re-ships) are computed once.
                let fixed = gen::random_list(n, c as u64 * 1009);
                let (expected_rank, expected_scan) = match mode {
                    Mode::Oneshot => (Vec::new(), Vec::new()),
                    _ => (runner.rank(&fixed), runner.scan(&fixed, &values, &AddOp)),
                };
                let handle = match mode {
                    Mode::Handle => Some(client.put(&fixed).expect("put").handle),
                    _ => None,
                };
                let (rank_kind, scan_kind, rank_body, scan_body) = match mode {
                    Mode::Oneshot => (FrameKind::Rank, FrameKind::Scan, Vec::new(), Vec::new()),
                    Mode::Inline => (
                        FrameKind::Rank,
                        FrameKind::Scan,
                        protocol::rank_body(&fixed, false),
                        protocol::scan_body(&fixed, &values, WireOp::Add, false),
                    ),
                    Mode::Handle => {
                        let h = handle.expect("put issued a handle");
                        (
                            FrameKind::RankH,
                            FrameKind::ScanH,
                            protocol::rank_h_body(h, false),
                            protocol::scan_h_body(h, &values, WireOp::Add, false),
                        )
                    }
                    Mode::Mutate | Mode::Pipeline => {
                        unreachable!("mutate/pipeline modes returned above")
                    }
                };

                for r in 0..requests {
                    if mode == Mode::Oneshot {
                        let list = gen::random_list(n, (c * 1009 + r) as u64);
                        if r % 2 == 0 {
                            let body = protocol::rank_body(&list, false);
                            let t_req = Instant::now();
                            let served = client
                                .request_encoded::<u64>(FrameKind::Rank, &body)
                                .expect("rank");
                            rank_lat.record(t_req.elapsed().as_nanos() as u64);
                            assert_eq!(served.output, runner.rank(&list), "rank parity");
                        } else {
                            let body = protocol::scan_body(&list, &values, WireOp::Add, false);
                            let t_req = Instant::now();
                            let served = client
                                .request_encoded::<i64>(FrameKind::Scan, &body)
                                .expect("scan");
                            scan_lat.record(t_req.elapsed().as_nanos() as u64);
                            assert_eq!(
                                served.output,
                                runner.scan(&list, &values, &AddOp),
                                "scan parity"
                            );
                        }
                    } else if r % 2 == 0 {
                        let t_req = Instant::now();
                        let served =
                            client.request_encoded::<u64>(rank_kind, &rank_body).expect("rank");
                        rank_lat.record(t_req.elapsed().as_nanos() as u64);
                        assert_eq!(served.output, expected_rank, "rank parity");
                    } else {
                        let t_req = Instant::now();
                        let served =
                            client.request_encoded::<i64>(scan_kind, &scan_body).expect("scan");
                        scan_lat.record(t_req.elapsed().as_nanos() as u64);
                        assert_eq!(served.output, expected_scan, "scan parity");
                    }
                    elements += n as u64;
                }
                if let Some(h) = handle {
                    client.drop_handle(h).expect("drop handle");
                }
                (elements, rank_lat, scan_lat, mut_lat)
            })
        })
        .collect();
    // Merge the per-thread histograms (merge is associative and
    // commutative, so join order does not matter).
    let mut elements = 0u64;
    let mut rank_lat = engine::Histogram::new();
    let mut scan_lat = engine::Histogram::new();
    let mut mut_lat = engine::Histogram::new();
    for w in workers {
        let (e, r, s, m) = w.join().expect("client");
        elements += e;
        rank_lat.merge(&r);
        scan_lat.merge(&s);
        mut_lat.merge(&m);
    }
    let elapsed = t0.elapsed();
    let total = clients * requests;
    println!(
        "{total} requests ({elements} vertices) in {:.3}s — {:.1} req/s, {:.2} M elem/s, all parity-checked",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
        elements as f64 / elapsed.as_secs_f64() / 1e6
    );
    for (name, h) in [("rank", &rank_lat), ("scan_add", &scan_lat), ("mutate", &mut_lat)] {
        if !h.is_empty() {
            println!(
                "client latency {name:>9}: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms  ({} requests)",
                h.percentile(50.0) as f64 / 1e6,
                h.percentile(95.0) as f64 / 1e6,
                h.percentile(99.0) as f64 / 1e6,
                h.max() as f64 / 1e6,
                h.count()
            );
        }
    }

    let mut probe = target.connect();
    if mode == Mode::Handle || mode == Mode::Mutate {
        let v2 = probe.stats_v2().expect("stats_v2");
        let s = &v2.store;
        println!(
            "store: {} hits / {} lookups, {} puts, {} evictions, {} artifacts built / {} reused",
            s.hits, s.lookups, s.puts, s.evictions, s.artifacts_built, s.artifacts_reused
        );
        if mode == Mode::Mutate {
            let m = &v2.mutate;
            println!(
                "mutations: {} batches ({} edits), maintenance {} incremental / {} full, {} dirty shards patched, {} artifacts patched",
                m.mutations, m.edits, m.incremental, m.full, m.dirty_shards_patched, m.artifacts_patched
            );
        }
    }
    let stats = probe.stats().expect("stats");
    println!("\n-- daemon stats --\n{}", stats.text);
    drop(probe);

    if let Some((engine, control, join)) = spawned {
        control.request_shutdown();
        join.join().expect("server thread").expect("server run");
        drop(engine);
    }
}
