//! Smoke-test client for a running `rankd serve` daemon (used by CI).
//!
//! ```sh
//! cargo run --release -p engine --bin rankd -- serve --socket /tmp/rankd.sock &
//! cargo run --release --example serve_smoke -- /tmp/rankd.sock
//! ```
//!
//! Connects over the Unix socket, runs one ranking and one scan,
//! asserts byte parity against a local [`listrank::HostRunner`] on the
//! same inputs, prints the daemon's STATS report, and sends SHUTDOWN.

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_smoke requires unix domain sockets");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() {
    use engine::client::Client;
    use listkit::gen;
    use listkit::ops::AddOp;
    use listrank::{Algorithm, HostRunner};

    let socket = std::env::args().nth(1).unwrap_or_else(|| "/tmp/rankd.sock".to_string());
    // The daemon may still be binding; retry briefly before giving up.
    let mut client = None;
    for _ in 0..50 {
        match Client::connect(&socket) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    }
    let mut client = client.unwrap_or_else(|| {
        eprintln!("serve_smoke: no daemon reachable at {socket}");
        std::process::exit(1);
    });
    println!("connected to {socket} (server protocol v{})", client.server_version());

    let n = 100_000;
    let list = gen::random_list(n, 0xC90);
    let values: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
    let runner = HostRunner::new(Algorithm::ReidMiller);

    let served = client.rank(&list).expect("served rank");
    assert_eq!(served.output, runner.rank(&list), "served ranks must be byte-identical");
    assert_ne!(served.meta.trace_id, 0, "server must echo a nonzero trace id");
    println!(
        "rank({n}): parity OK  [trace {}, algorithm {}, exec {:.3} ms, queued {:.3} ms]",
        served.meta.trace_id,
        served.meta.algorithm.name(),
        served.meta.exec_ns as f64 / 1e6,
        served.meta.queued_ns as f64 / 1e6
    );

    let scanned = client.scan_add(&list, &values).expect("served scan");
    assert_eq!(scanned.output, runner.scan(&list, &values, &AddOp), "served scan must match");
    println!("scan_add({n}): parity OK  [algorithm {}]", scanned.meta.algorithm.name());

    let stats = client.stats().expect("stats");
    println!("\n-- daemon stats --\n{}", stats.text);

    client.shutdown().expect("daemon acknowledged shutdown");
    println!("shutdown acknowledged; smoke test passed");
}
