//! Euler-tour tree contraction: depths and subtree sizes of a rooted
//! tree from one list scan and one list rank — the classic consumer of
//! the paper's primitive.
//!
//! ```sh
//! cargo run --release --example tree_contraction
//! ```

use cray_list_ranking::applications::euler;
use cray_list_ranking::prelude::*;
use std::time::Instant;

fn main() {
    let n = 500_000;
    let tree = Tree::random(n, 2024);
    println!("random recursive tree with {n} vertices");

    let runner = HostRunner::new(Algorithm::ReidMiller);

    let t0 = Instant::now();
    let depths = euler::depths(&tree, &runner);
    let t_depth = t0.elapsed();
    let t0 = Instant::now();
    let sizes = euler::subtree_sizes(&tree, &runner);
    let t_size = t0.elapsed();

    let max_depth = depths.iter().max().unwrap();
    println!(
        "depths via list scan over the Euler tour: {:.1} ms (max depth {max_depth})",
        t_depth.as_secs_f64() * 1e3
    );
    println!(
        "subtree sizes via list rank:              {:.1} ms (root size {})",
        t_size.as_secs_f64() * 1e3,
        sizes[tree.root() as usize]
    );

    // Check against the serial references.
    let t0 = Instant::now();
    let ref_depths = tree.depths_serial();
    let ref_sizes = tree.subtree_sizes_serial();
    println!(
        "serial BFS/post-order reference:          {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(depths, ref_depths);
    assert_eq!(sizes, ref_sizes);
    println!("parallel results verified against serial traversals ✓");

    // A couple of statistics a tree-algorithms user would want.
    let leaves = (0..n).filter(|&v| sizes[v] == 1).count();
    let avg_depth = depths.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
    println!("leaves: {leaves}; average depth: {avg_depth:.2} (≈ ln n = {:.2})", (n as f64).ln());
}
