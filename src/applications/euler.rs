//! Euler-tour tree contraction via list ranking/list scan.
//!
//! The Euler tour of a rooted tree visits every edge twice (down into a
//! subtree, back up out of it), forming a linked list of `2(n−1)` arcs.
//! Two classic facts turn list primitives into tree algorithms:
//!
//! * assigning `+1` to down-arcs and `−1` to up-arcs, the prefix sum at
//!   vertex `v`'s down-arc is its **depth**;
//! * the number of arcs between `v`'s down-arc and up-arc (inclusive)
//!   is twice its **subtree size**, so subtree sizes follow from list
//!   *ranking* alone.
//!
//! This is precisely the "list ranking as a primitive for many tree and
//! graph algorithms" usage the paper cites as motivation.

use engine::{Engine, Request};
use listkit::ops::AddOp;
use listkit::{Idx, LinkedList};
use listrank::{Algorithm, HostRunner};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A rooted tree with ordered children.
#[derive(Clone, Debug)]
pub struct Tree {
    parent: Vec<Option<Idx>>,
    children: Vec<Vec<Idx>>,
    root: Idx,
}

impl Tree {
    /// Build from a parent array (`None` exactly at the root).
    ///
    /// Validates that the structure is a single tree: one root, every
    /// vertex reachable from it.
    pub fn from_parents(parents: Vec<Option<Idx>>) -> Result<Tree, String> {
        let n = parents.len();
        if n == 0 {
            return Err("tree must have at least one vertex".into());
        }
        let mut root = None;
        let mut children: Vec<Vec<Idx>> = vec![Vec::new(); n];
        for (v, &p) in parents.iter().enumerate() {
            match p {
                None => {
                    if root.replace(v as Idx).is_some() {
                        return Err("multiple roots".into());
                    }
                }
                Some(p) => {
                    if p as usize >= n {
                        return Err(format!("parent {p} of {v} out of range"));
                    }
                    children[p as usize].push(v as Idx);
                }
            }
        }
        let root = root.ok_or("no root")?;
        // Reachability (also rejects parent cycles).
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(u) = stack.pop() {
            if seen[u as usize] {
                return Err("cycle detected".into());
            }
            seen[u as usize] = true;
            count += 1;
            stack.extend(&children[u as usize]);
        }
        if count != n {
            return Err(format!("only {count} of {n} vertices reachable from the root"));
        }
        Ok(Tree { parent: parents, children, root })
    }

    /// A uniform random recursive tree: vertex `v > 0` attaches to a
    /// uniform vertex in `0..v`; root 0.
    pub fn random(n: usize, seed: u64) -> Tree {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parents: Vec<Option<Idx>> = vec![None];
        for v in 1..n {
            parents.push(Some(rng.random_range(0..v as u64) as Idx));
        }
        Tree::from_parents(parents).expect("random attachment is a tree")
    }

    /// A path `0 → 1 → … → n−1` (maximum depth).
    pub fn path(n: usize) -> Tree {
        assert!(n >= 1);
        let parents = (0..n).map(|v| if v == 0 { None } else { Some(v as Idx - 1) }).collect();
        Tree::from_parents(parents).expect("a path is a tree")
    }

    /// A star: everything hangs off the root (maximum fan-out).
    pub fn star(n: usize) -> Tree {
        assert!(n >= 1);
        let parents = (0..n).map(|v| if v == 0 { None } else { Some(0) }).collect();
        Tree::from_parents(parents).expect("a star is a tree")
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Trees are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root vertex.
    pub fn root(&self) -> Idx {
        self.root
    }

    /// Parent of `v` (`None` at the root).
    pub fn parent(&self, v: Idx) -> Option<Idx> {
        self.parent[v as usize]
    }

    /// Ordered children of `v`.
    pub fn children(&self, v: Idx) -> &[Idx] {
        &self.children[v as usize]
    }

    /// Reference depths by breadth-first traversal (serial).
    pub fn depths_serial(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.len()];
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(u) = queue.pop_front() {
            for &c in &self.children[u as usize] {
                depth[c as usize] = depth[u as usize] + 1;
                queue.push_back(c);
            }
        }
        depth
    }

    /// Reference subtree sizes by iterative post-order (serial).
    pub fn subtree_sizes_serial(&self) -> Vec<u32> {
        let n = self.len();
        let mut size = vec![1u32; n];
        // Process vertices in reverse BFS order so children are done
        // before parents.
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            queue.extend(self.children[u as usize].iter().copied());
        }
        for &u in order.iter().rev() {
            for &c in &self.children[u as usize] {
                size[u as usize] += size[c as usize];
            }
        }
        size
    }
}

/// The Euler tour of a tree as a linked list of arcs.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// The arc list (`2(n−1)` arcs; `None` for a single-vertex tree).
    pub list: LinkedList,
    /// `down_arc[v]`: the arc entering `v` (undefined at the root).
    pub down_arc: Vec<Idx>,
    /// `up_arc[v]`: the arc leaving `v`'s subtree (undefined at root).
    pub up_arc: Vec<Idx>,
}

impl EulerTour {
    /// Build the tour. Returns `None` for a single-vertex tree (no
    /// arcs).
    pub fn new(tree: &Tree) -> Option<EulerTour> {
        let n = tree.len();
        if n <= 1 {
            return None;
        }
        // Dense edge ids for non-root vertices.
        let mut eid = vec![Idx::MAX; n];
        let mut next_id = 0 as Idx;
        for v in 0..n as Idx {
            if v != tree.root() {
                eid[v as usize] = next_id;
                next_id += 1;
            }
        }
        let down = |v: Idx| 2 * eid[v as usize];
        let up = |v: Idx| 2 * eid[v as usize] + 1;
        let arcs = 2 * (n - 1);
        let mut next = vec![0 as Idx; arcs];
        for u in 0..n as Idx {
            let kids = tree.children(u);
            // Entering u (or starting at the root) leads into the first
            // child, or straight back up.
            if u != tree.root() {
                next[down(u) as usize] =
                    if let Some(&c0) = kids.first() { down(c0) } else { up(u) };
            }
            // Leaving child c leads to its next sibling, or up out of u.
            for (i, &c) in kids.iter().enumerate() {
                next[up(c) as usize] = if let Some(&sib) = kids.get(i + 1) {
                    down(sib)
                } else if u == tree.root() {
                    up(c) // tour ends: tail self-loop
                } else {
                    up(u)
                };
            }
        }
        let head = down(*tree.children(tree.root()).first().expect("n > 1 has a child"));
        let list = LinkedList::new(next, head).expect("Euler tour is a single path");
        let mut down_arc = vec![Idx::MAX; n];
        let mut up_arc = vec![Idx::MAX; n];
        for v in 0..n as Idx {
            if v != tree.root() {
                down_arc[v as usize] = down(v);
                up_arc[v as usize] = up(v);
            }
        }
        Some(EulerTour { list, down_arc, up_arc })
    }
}

/// Per-vertex depths via one parallel **list scan** over the Euler tour
/// (+1 on down-arcs, −1 on up-arcs).
pub fn depths(tree: &Tree, runner: &HostRunner) -> Vec<u32> {
    let n = tree.len();
    let Some(tour) = EulerTour::new(tree) else {
        return vec![0];
    };
    // value[arc] = +1 for down-arcs (even ids), −1 for up-arcs.
    let values: Vec<i64> = (0..tour.list.len()).map(|a| if a % 2 == 0 { 1 } else { -1 }).collect();
    let scan = runner.scan(&tour.list, &values, &AddOp);
    let mut depth = vec![0u32; n];
    for v in 0..n as Idx {
        if v != tree.root() {
            // inclusive prefix at the down-arc = exclusive + 1.
            depth[v as usize] = (scan[tour.down_arc[v as usize] as usize] + 1) as u32;
        }
    }
    depth
}

/// Per-vertex subtree sizes via one parallel **list rank** over the
/// Euler tour.
pub fn subtree_sizes(tree: &Tree, runner: &HostRunner) -> Vec<u32> {
    let n = tree.len();
    let Some(tour) = EulerTour::new(tree) else {
        return vec![1];
    };
    let ranks = runner.rank(&tour.list);
    let mut size = vec![0u32; n];
    for v in 0..n as Idx {
        if v == tree.root() {
            size[v as usize] = n as u32;
        } else {
            let d = ranks[tour.down_arc[v as usize] as usize];
            let u = ranks[tour.up_arc[v as usize] as usize];
            // u − d + 1 arcs lie inside v's subtree: two per vertex.
            size[v as usize] = (u - d).div_ceil(2) as u32;
        }
    }
    size
}

/// Convenience: depths with the default Reid-Miller host runner.
pub fn depths_parallel(tree: &Tree) -> Vec<u32> {
    depths(tree, &HostRunner::new(Algorithm::ReidMiller))
}

/// Convenience: subtree sizes with the default Reid-Miller host runner.
pub fn subtree_sizes_parallel(tree: &Tree) -> Vec<u32> {
    subtree_sizes(tree, &HostRunner::new(Algorithm::ReidMiller))
}

/// [`depths`] served by the batch engine: the Euler-tour scan is
/// submitted as a typed [`Request::scan`] and awaited through the typed
/// handle — the tree-contraction workload as one request among many on
/// a shared `rankd` engine (adaptive dispatch, pooled scratch), instead
/// of a dedicated one-shot runner.
pub fn depths_engine(tree: &Tree, engine: &Engine) -> Vec<u32> {
    let n = tree.len();
    let Some(tour) = EulerTour::new(tree) else {
        return vec![0];
    };
    let EulerTour { list, down_arc, .. } = tour;
    let values: Arc<Vec<i64>> =
        Arc::new((0..list.len()).map(|a| if a % 2 == 0 { 1 } else { -1 }).collect());
    let scan = engine
        .submit(Request::scan(Arc::new(list), values, AddOp))
        .expect("engine accepting work")
        .wait()
        .expect("depth scan completes")
        .output;
    let mut depth = vec![0u32; n];
    for v in 0..n as Idx {
        if v != tree.root() {
            depth[v as usize] = (scan[down_arc[v as usize] as usize] + 1) as u32;
        }
    }
    depth
}

/// [`subtree_sizes`] served by the batch engine via a typed
/// [`Request::rank`].
pub fn subtree_sizes_engine(tree: &Tree, engine: &Engine) -> Vec<u32> {
    let n = tree.len();
    let Some(tour) = EulerTour::new(tree) else {
        return vec![1];
    };
    let EulerTour { list, down_arc, up_arc } = tour;
    let ranks = engine
        .submit(Request::rank(Arc::new(list)))
        .expect("engine accepting work")
        .wait()
        .expect("tour ranking completes")
        .output;
    let mut size = vec![0u32; n];
    for v in 0..n as Idx {
        if v == tree.root() {
            size[v as usize] = n as u32;
        } else {
            let d = ranks[down_arc[v as usize] as usize];
            let u = ranks[up_arc[v as usize] as usize];
            size[v as usize] = (u - d).div_ceil(2) as u32;
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tour_structure_of_small_tree() {
        // root 0 with children 1, 2; 1 has child 3.
        let tree = Tree::from_parents(vec![None, Some(0), Some(0), Some(1)]).unwrap();
        let tour = EulerTour::new(&tree).unwrap();
        assert_eq!(tour.list.len(), 6);
        // Tour order: down(1) down(3) up(3) up(1) down(2) up(2).
        let order = tour.list.order();
        assert_eq!(order[0], tour.down_arc[1]);
        assert_eq!(order[1], tour.down_arc[3]);
        assert_eq!(order[2], tour.up_arc[3]);
        assert_eq!(order[3], tour.up_arc[1]);
        assert_eq!(order[4], tour.down_arc[2]);
        assert_eq!(order[5], tour.up_arc[2]);
    }

    #[test]
    fn depths_match_bfs_on_random_trees() {
        for n in [1usize, 2, 10, 1000, 20_000] {
            let tree = Tree::random(n, n as u64 + 5);
            assert_eq!(depths_parallel(&tree), tree.depths_serial(), "n = {n}");
        }
    }

    #[test]
    fn sizes_match_postorder_on_random_trees() {
        for n in [1usize, 2, 10, 1000, 20_000] {
            let tree = Tree::random(n, 2 * n as u64 + 1);
            assert_eq!(subtree_sizes_parallel(&tree), tree.subtree_sizes_serial(), "n = {n}");
        }
    }

    #[test]
    fn extreme_shapes() {
        let path = Tree::path(500);
        assert_eq!(depths_parallel(&path)[499], 499);
        assert_eq!(subtree_sizes_parallel(&path)[0], 500);
        assert_eq!(subtree_sizes_parallel(&path)[499], 1);
        let star = Tree::star(500);
        let d = depths_parallel(&star);
        assert!(d[1..].iter().all(|&x| x == 1));
        assert_eq!(subtree_sizes_parallel(&star)[0], 500);
    }

    #[test]
    fn invalid_trees_rejected() {
        assert!(Tree::from_parents(vec![]).is_err());
        assert!(Tree::from_parents(vec![Some(0)]).is_err()); // no root
        assert!(Tree::from_parents(vec![None, None]).is_err()); // two roots
        assert!(Tree::from_parents(vec![None, Some(9)]).is_err()); // bad parent

        // 1 and 2 point at each other: unreachable cycle.
        assert!(Tree::from_parents(vec![None, Some(2), Some(1)]).is_err());
    }

    #[test]
    fn every_algorithm_computes_the_same_depths() {
        let tree = Tree::random(3000, 42);
        let want = tree.depths_serial();
        for alg in Algorithm::ALL {
            assert_eq!(depths(&tree, &HostRunner::new(alg)), want, "{alg}");
        }
    }

    #[test]
    fn engine_served_contraction_matches_serial() {
        let engine = Engine::with_defaults();
        for n in [1usize, 2, 50, 5000] {
            let tree = Tree::random(n, 3 * n as u64 + 7);
            assert_eq!(depths_engine(&tree, &engine), tree.depths_serial(), "depths n = {n}");
            assert_eq!(
                subtree_sizes_engine(&tree, &engine),
                tree.subtree_sizes_serial(),
                "sizes n = {n}"
            );
        }
        engine.shutdown();
    }
}
