//! Applications of list ranking and list scan.
//!
//! The paper's closing question is "whether having a fast list-ranking
//! implementation helps in making other pointer-based applications
//! practical." Two canonical consumers are provided:
//!
//! * [`euler`] — Euler-tour tree contraction: one list rank + one list
//!   scan compute depths and subtree sizes of a rooted tree in parallel;
//! * [`recurrence`] — first-order linear recurrences solved by a scan
//!   with the affine-composition operator (the "loop raking" workload of
//!   the paper's reference [5]).

pub mod euler;
pub mod recurrence;
