//! Applications of list ranking and list scan.
//!
//! The paper's closing question is "whether having a fast list-ranking
//! implementation helps in making other pointer-based applications
//! practical." Two canonical consumers are provided:
//!
//! * [`euler`] — Euler-tour tree contraction: one list rank + one list
//!   scan compute depths and subtree sizes of a rooted tree in parallel;
//! * [`recurrence`] — first-order linear recurrences solved by a scan
//!   with the affine-composition operator (the "loop raking" workload of
//!   the paper's reference \[5\]).
//!
//! Both come in two servings: direct `HostRunner` calls, and
//! engine-backed variants (`euler::depths_engine`,
//! `recurrence::solve_on_list_engine`) that submit typed
//! [`engine::Request`]s to a shared `rankd` engine — the applications
//! as production consumers of the batch API rather than standalone
//! programs.

pub mod euler;
pub mod recurrence;
