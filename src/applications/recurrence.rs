//! First-order linear recurrences via list scan.
//!
//! `x_i = a_i · x_{i−1} + b_i` is an affine-map composition, so a list
//! scan with [`listkit::ops::AffineOp`] solves the whole recurrence in
//! parallel — the application behind the paper's reference \[5\]
//! (Blelloch, Chatterjee & Zagha, *Solving linear recurrences with loop
//! raking*), here expressed over an arbitrary linked-list order rather
//! than an array.

use engine::{Engine, Request};
use listkit::ops::{Affine, AffineOp};
use listkit::{gen, LinkedList};
use listrank::HostRunner;
use std::sync::Arc;

/// Solve `x_k = a_k · x_{k−1} + b_k` (k in list order, `x_{-1} = x0`)
/// for every vertex, in parallel. Returns `x` indexed **by vertex**.
pub fn solve_on_list(
    list: &LinkedList,
    coeffs: &[Affine],
    x0: i64,
    runner: &HostRunner,
) -> Vec<i64> {
    assert_eq!(coeffs.len(), list.len());
    // Exclusive scan composes all maps strictly before v; applying v's
    // own map afterwards gives the inclusive solution at v.
    let pre = runner.scan(list, coeffs, &AffineOp);
    pre.iter().zip(coeffs).map(|(p, c)| c.apply(p.apply(x0))).collect()
}

/// Solve an array-ordered recurrence (the common case): element `i`
/// depends on element `i−1`.
pub fn solve(coeffs: &[Affine], x0: i64, runner: &HostRunner) -> Vec<i64> {
    let list = gen::sequential_list(coeffs.len());
    solve_on_list(&list, coeffs, x0, runner)
}

/// [`solve_on_list`] served by the batch engine: the affine-composition
/// scan — a **non-commutative** operator — is submitted as a typed
/// [`Request::scan`] and awaited through the typed handle, so recurrence
/// solving rides the same adaptive, scratch-pooled `rankd` engine as
/// every other workload. List and coefficients are `Arc`-shared with
/// the engine (many recurrences over one list submit with no copying).
pub fn solve_on_list_engine(
    list: &Arc<LinkedList>,
    coeffs: &Arc<Vec<Affine>>,
    x0: i64,
    engine: &Engine,
) -> Vec<i64> {
    assert_eq!(coeffs.len(), list.len());
    let pre = engine
        .submit(Request::scan(Arc::clone(list), Arc::clone(coeffs), AffineOp))
        .expect("engine accepting work")
        .wait()
        .expect("recurrence scan completes")
        .output;
    pre.iter().zip(coeffs.iter()).map(|(p, c)| c.apply(p.apply(x0))).collect()
}

/// Serial reference.
pub fn solve_serial(coeffs: &[Affine], x0: i64) -> Vec<i64> {
    let mut out = Vec::with_capacity(coeffs.len());
    let mut x = x0;
    for c in coeffs {
        x = c.apply(x);
        out.push(x);
    }
    out
}

/// Serial reference over a list order, indexed by vertex.
pub fn solve_serial_on_list(list: &LinkedList, coeffs: &[Affine], x0: i64) -> Vec<i64> {
    let mut out = vec![0i64; list.len()];
    let mut x = x0;
    for v in list.iter() {
        x = coeffs[v as usize].apply(x);
        out[v as usize] = x;
    }
    out
}

/// Fibonacci-style check value: the composed map over the whole list —
/// the allocation-free [`listkit::serial::total`] fold.
pub fn total_map(list: &LinkedList, coeffs: &[Affine]) -> Affine {
    listkit::serial::total(list, coeffs, &AffineOp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use listrank::Algorithm;

    fn runner() -> HostRunner {
        HostRunner::new(Algorithm::ReidMiller)
    }

    #[test]
    fn array_recurrence_matches_serial() {
        let n = 30_000;
        let coeffs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 3) as i64 - 1, (i % 7) as i64)).collect();
        assert_eq!(solve(&coeffs, 5, &runner()), solve_serial(&coeffs, 5));
    }

    #[test]
    fn list_ordered_recurrence() {
        let n = 10_000;
        let list = gen::random_list(n, 11);
        let coeffs: Vec<Affine> = (0..n).map(|i| Affine::new(1, (i % 10) as i64 - 4)).collect();
        assert_eq!(
            solve_on_list(&list, &coeffs, 0, &runner()),
            solve_serial_on_list(&list, &coeffs, 0)
        );
    }

    #[test]
    fn constant_decay_recurrence() {
        // x_i = 2 x_{i-1} (wrapping doubling): x_k = x0 << (k+1).
        let coeffs = vec![Affine::new(2, 0); 30];
        let xs = solve(&coeffs, 1, &runner());
        for (k, &x) in xs.iter().enumerate() {
            assert_eq!(x, 1i64 << (k + 1));
        }
    }

    #[test]
    fn engine_served_recurrence_matches_serial() {
        let engine = Engine::with_defaults();
        for n in [1usize, 2, 333, 20_000] {
            let list = Arc::new(gen::random_list(n, n as u64 + 13));
            let coeffs: Arc<Vec<Affine>> =
                Arc::new((0..n as i64).map(|i| Affine::new((i % 3) - 1, (i % 9) - 4)).collect());
            assert_eq!(
                solve_on_list_engine(&list, &coeffs, 42, &engine),
                solve_serial_on_list(&list, &coeffs, 42),
                "n = {n}"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn total_map_equals_last_element_relation() {
        let n = 5_000;
        let list = gen::random_list(n, 3);
        let coeffs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 2) as i64 + 1, (i % 5) as i64)).collect();
        let xs = solve_on_list(&list, &coeffs, 7, &runner());
        let total = total_map(&list, &coeffs);
        assert_eq!(xs[list.tail() as usize], total.apply(7));
    }
}
