//! First-order linear recurrences via list scan.
//!
//! `x_i = a_i · x_{i−1} + b_i` is an affine-map composition, so a list
//! scan with [`listkit::ops::AffineOp`] solves the whole recurrence in
//! parallel — the application behind the paper's reference [5]
//! (Blelloch, Chatterjee & Zagha, *Solving linear recurrences with loop
//! raking*), here expressed over an arbitrary linked-list order rather
//! than an array.

use listkit::ops::{Affine, AffineOp, ScanOp};
use listkit::{gen, LinkedList};
use listrank::HostRunner;

/// Solve `x_k = a_k · x_{k−1} + b_k` (k in list order, `x_{-1} = x0`)
/// for every vertex, in parallel. Returns `x` indexed **by vertex**.
pub fn solve_on_list(
    list: &LinkedList,
    coeffs: &[Affine],
    x0: i64,
    runner: &HostRunner,
) -> Vec<i64> {
    assert_eq!(coeffs.len(), list.len());
    // Exclusive scan composes all maps strictly before v; applying v's
    // own map afterwards gives the inclusive solution at v.
    let pre = runner.scan(list, coeffs, &AffineOp);
    pre.iter().zip(coeffs).map(|(p, c)| c.apply(p.apply(x0))).collect()
}

/// Solve an array-ordered recurrence (the common case): element `i`
/// depends on element `i−1`.
pub fn solve(coeffs: &[Affine], x0: i64, runner: &HostRunner) -> Vec<i64> {
    let list = gen::sequential_list(coeffs.len());
    solve_on_list(&list, coeffs, x0, runner)
}

/// Serial reference.
pub fn solve_serial(coeffs: &[Affine], x0: i64) -> Vec<i64> {
    let mut out = Vec::with_capacity(coeffs.len());
    let mut x = x0;
    for c in coeffs {
        x = c.apply(x);
        out.push(x);
    }
    out
}

/// Serial reference over a list order, indexed by vertex.
pub fn solve_serial_on_list(list: &LinkedList, coeffs: &[Affine], x0: i64) -> Vec<i64> {
    let mut out = vec![0i64; list.len()];
    let mut x = x0;
    for v in list.iter() {
        x = coeffs[v as usize].apply(x);
        out[v as usize] = x;
    }
    out
}

/// Fibonacci-style check value: the composed map over the whole list.
pub fn total_map(list: &LinkedList, coeffs: &[Affine]) -> Affine {
    let mut acc = AffineOp.identity();
    for v in list.iter() {
        acc = AffineOp.combine(acc, coeffs[v as usize]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use listrank::Algorithm;

    fn runner() -> HostRunner {
        HostRunner::new(Algorithm::ReidMiller)
    }

    #[test]
    fn array_recurrence_matches_serial() {
        let n = 30_000;
        let coeffs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 3) as i64 - 1, (i % 7) as i64)).collect();
        assert_eq!(solve(&coeffs, 5, &runner()), solve_serial(&coeffs, 5));
    }

    #[test]
    fn list_ordered_recurrence() {
        let n = 10_000;
        let list = gen::random_list(n, 11);
        let coeffs: Vec<Affine> = (0..n).map(|i| Affine::new(1, (i % 10) as i64 - 4)).collect();
        assert_eq!(
            solve_on_list(&list, &coeffs, 0, &runner()),
            solve_serial_on_list(&list, &coeffs, 0)
        );
    }

    #[test]
    fn constant_decay_recurrence() {
        // x_i = 2 x_{i-1} (wrapping doubling): x_k = x0 << (k+1).
        let coeffs = vec![Affine::new(2, 0); 30];
        let xs = solve(&coeffs, 1, &runner());
        for (k, &x) in xs.iter().enumerate() {
            assert_eq!(x, 1i64 << (k + 1));
        }
    }

    #[test]
    fn total_map_equals_last_element_relation() {
        let n = 5_000;
        let list = gen::random_list(n, 3);
        let coeffs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 2) as i64 + 1, (i % 5) as i64)).collect();
        let xs = solve_on_list(&list, &coeffs, 7, &runner());
        let total = total_map(&list, &coeffs);
        assert_eq!(xs[list.tail() as usize], total.apply(7));
    }
}
