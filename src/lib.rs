//! # cray-list-ranking
//!
//! A comprehensive reproduction of Margaret Reid-Miller, *"List Ranking
//! and List Scan on the Cray C-90"* (SPAA 1994; JCSS 53:344–356, 1996),
//! as a Rust workspace:
//!
//! * [`listkit`] — linked-list substrate (representation, generators,
//!   scan operators, validation, the packed one-gather encoding);
//! * [`vmach`] — a Cray C90-style vector multiprocessor **cost
//!   simulator** (the paper's hardware, reproduced as a calibrated
//!   model executing real data), plus cache/workstation and banked
//!   memory models;
//! * [`rankmodel`] — the paper's §4 analysis: exponential sublist
//!   order statistics, the Eq. (4) pack schedule, the Eq. (3)/(5) cost
//!   model, and the `(m, S_1)` tuner;
//! * [`listrank`] — the contribution: Reid-Miller's algorithm and the
//!   four baselines (serial, Wyllie, Miller–Reif, Anderson–Miller) on
//!   a real-parallel `rayon` backend and on the simulated C90;
//! * [`engine`] — `rankd`, the batch execution subsystem: typed
//!   requests over any scan operator (`engine::Request` +
//!   `engine::JobHandle`), a bounded job queue, worker pool, adaptive
//!   per-(size, op) algorithm selection, scratch buffer pooling, a
//!   throughput/stats surface, and the `rankd serve` socket front-end
//!   (`engine::server` / `engine::client` over the `engine::protocol`
//!   wire format);
//! * [`applications`] — classic consumers of list ranking (Euler-tour
//!   tree contraction, linear recurrences), each also served through
//!   the engine's typed request API.
//!
//! The repository-level documents divide the territory the same way:
//! `DESIGN.md` is the architecture map (the layer diagram and the life
//! of a request from socket bytes to output bytes), `docs/PROTOCOL.md`
//! is the byte-level wire-format specification, and `README.md` is the
//! quick start. The experiment harness that regenerates the paper's
//! tables and figures is the workspace member at `crates/bench`
//! (package name `repro`: run it with `cargo run -p repro --bin all`).
//!
//! ## Quick start
//!
//! ```
//! use cray_list_ranking::prelude::*;
//! use listkit::gen;
//!
//! let list = gen::random_list(100_000, 42);
//! let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
//! assert_eq!(ranks[list.head() as usize], 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use engine;
pub use listkit;
pub use listrank;
pub use rankmodel;
pub use vmach;

pub mod applications;

/// Re-export of the most commonly used items.
pub mod prelude {
    pub use crate::applications::euler::{EulerTour, Tree};
    pub use engine::{Engine, EngineConfig, JobHandle, OpKind, Request};
    pub use listkit::gen;
    pub use listkit::ops::{AddOp, AffineOp, MaxOp, MinOp, XorOp};
    pub use listkit::{LinkedList, ScanOp, ValuedList};
    pub use listrank::{Algorithm, HostRunner, SimParams, SimRunner};
}
