//! End-to-end application tests: the primitives composed into the
//! workloads the paper motivates.

use cray_list_ranking::applications::euler;
use cray_list_ranking::prelude::*;
use listkit::gen;

#[test]
fn tree_contraction_at_scale() {
    let tree = Tree::random(200_000, 99);
    let runner = HostRunner::new(Algorithm::ReidMiller);
    assert_eq!(euler::depths(&tree, &runner), tree.depths_serial());
    assert_eq!(euler::subtree_sizes(&tree, &runner), tree.subtree_sizes_serial());
}

#[test]
fn applications_run_through_the_engine_end_to_end() {
    // The applications as engine consumers: tree contraction and a
    // non-commutative recurrence solve, submitted as typed requests to
    // ONE shared engine (interleaved with each other, the serving-system
    // shape) and byte-compared with the serial references.
    use cray_list_ranking::applications::recurrence;
    use listkit::ops::Affine;
    use std::sync::Arc;

    let engine = Engine::with_defaults();
    let tree = Tree::random(60_000, 17);
    assert_eq!(euler::depths_engine(&tree, &engine), tree.depths_serial());
    assert_eq!(euler::subtree_sizes_engine(&tree, &engine), tree.subtree_sizes_serial());

    let n = 80_000;
    let list = Arc::new(gen::random_list(n, 29));
    let coeffs: Arc<Vec<Affine>> =
        Arc::new((0..n as i64).map(|i| Affine::new((i % 3) - 1, (i % 11) - 5)).collect());
    assert_eq!(
        recurrence::solve_on_list_engine(&list, &coeffs, 7, &engine),
        recurrence::solve_serial_on_list(&list, &coeffs, 7)
    );

    let stats = engine.shutdown();
    assert_eq!(stats.completed, 3, "three application requests served");
    assert!(
        stats.dispatch_by_op.iter().any(|(op, _)| *op == OpKind::Affine),
        "the recurrence solve dispatched under the affine op kind"
    );
    assert!(stats.dispatch_by_op.iter().any(|(op, _)| *op == OpKind::Rank));
    assert!(stats.dispatch_by_op.iter().any(|(op, _)| *op == OpKind::Add));
}

#[test]
fn tree_shapes_edge_cases() {
    for tree in [Tree::path(2000), Tree::star(2000), Tree::random(1, 0), Tree::random(2, 0)] {
        let runner = HostRunner::new(Algorithm::ReidMiller);
        assert_eq!(euler::depths(&tree, &runner), tree.depths_serial());
        assert_eq!(euler::subtree_sizes(&tree, &runner), tree.subtree_sizes_serial());
    }
}

#[test]
fn subtree_sizes_sum_identity() {
    // Σ size(v) = Σ (depth(v) + 1): both count (ancestor, descendant)
    // pairs including v itself.
    let tree = Tree::random(50_000, 5);
    let runner = HostRunner::new(Algorithm::ReidMiller);
    let sizes = euler::subtree_sizes(&tree, &runner);
    let depths = euler::depths(&tree, &runner);
    let lhs: u64 = sizes.iter().map(|&s| s as u64).sum();
    let rhs: u64 = depths.iter().map(|&d| d as u64 + 1).sum();
    assert_eq!(lhs, rhs);
}

#[test]
fn list_to_array_roundtrip() {
    // rank → reorder → rebuild the list from the order → identical.
    let n = 80_000;
    let list = gen::random_list(n, 17);
    let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
    let order = listkit::serial::order_from_ranks(&ranks);
    let rebuilt = listkit::LinkedList::from_order(&order).unwrap();
    assert_eq!(rebuilt, list);
}

#[test]
fn segmented_sums_via_affine_trick() {
    // A segmented sum over list order: encode "reset" boundaries as the
    // affine map x→0+v and "accumulate" as x→x+v; composing along the
    // list yields running sums that restart at each boundary — a scan a
    // downstream user would actually write.
    use listkit::ops::{Affine, AffineOp};
    let n = 10_000usize;
    let list = gen::random_list(n, 23);
    let order = list.order();
    // Mark every 100th vertex *in list order* as a segment start.
    let mut is_start = vec![false; n];
    for (k, &v) in order.iter().enumerate() {
        if k % 100 == 0 {
            is_start[v as usize] = true;
        }
    }
    let vals: Vec<Affine> = (0..n)
        .map(|v| {
            let x = (v % 7) as i64;
            if is_start[v] {
                Affine::new(0, x) // reset, then add x
            } else {
                Affine::new(1, x) // accumulate x
            }
        })
        .collect();
    let scans = HostRunner::new(Algorithm::ReidMiller).scan(&list, &vals, &AffineOp);
    // Verify: inclusive segmented sums computed directly.
    let mut acc = 0i64;
    for (k, &v) in order.iter().enumerate() {
        let x = (v as usize % 7) as i64;
        if k % 100 == 0 {
            acc = x;
        } else {
            acc += x;
        }
        // inclusive value at v = apply the exclusive composite to 0,
        // then this vertex's own map.
        let inclusive = vals[v as usize].apply(scans[v as usize].apply(0));
        assert_eq!(inclusive, acc, "at list position {k}");
    }
}

#[test]
fn workstation_model_sees_layout_not_just_size() {
    // Same size, different layouts: the cache simulator must charge the
    // random layout more — the mechanistic point behind Table I's two
    // Alpha columns.
    use vmach::workstation::WorkstationModel;
    let n = 4_000_000;
    let seq = gen::sequential_list(n);
    let rnd = gen::random_list(n, 4);
    let alpha = WorkstationModel::dec_alpha();
    let t_seq = alpha.run_rank(seq.links(), seq.head(), false).ns_per_vertex;
    let t_rnd = alpha.run_rank(rnd.links(), rnd.head(), false).ns_per_vertex;
    assert!(t_rnd > 2.0 * t_seq, "random {t_rnd:.0} ns/vertex should dwarf sequential {t_seq:.0}");
}
