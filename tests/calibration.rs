//! Calibration invariants: the simulated machine must stay anchored to
//! the paper's published numbers, and the headline claims must hold.

use cray_list_ranking::prelude::*;
use listkit::gen;
use vmach::workstation::WorkstationModel;

/// Table I anchors (ns/vertex) with tolerances. The serial and Alpha
/// endpoints are exact calibration targets; the vectorized numbers come
/// out of the cost model and are allowed the model's overhang.
#[test]
fn table1_anchor_points() {
    let n = 2_000_000;
    let list = gen::random_list(n, 1);

    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list);
    assert!((serial.ns_per_vertex() - 177.0).abs() < 2.0);

    let ours1 = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
    assert!(
        ours1.ns_per_vertex() > 18.0 && ours1.ns_per_vertex() < 32.0,
        "1-CPU rank {} ns/vertex (paper 21.3)",
        ours1.ns_per_vertex()
    );

    let ours8 = SimRunner::new(Algorithm::ReidMiller, 8).rank(&list);
    assert!(
        ours8.ns_per_vertex() < 6.5,
        "8-CPU rank {} ns/vertex (paper 3.1)",
        ours8.ns_per_vertex()
    );
}

#[test]
fn workstation_endpoints() {
    // Cached: a warm small list hits the calibrated 98/200 ns exactly.
    let small = gen::random_list(20_000, 2);
    let alpha = WorkstationModel::dec_alpha();
    let r = alpha.run_rank(small.links(), small.head(), true);
    assert_eq!(r.cache.misses, 0);
    assert!((r.ns_per_vertex - 98.0).abs() < 1e-9);
    let s = alpha.run_scan(small.links(), small.head(), true);
    assert!((s.ns_per_vertex - 200.0).abs() < 1e-9);
}

#[test]
fn headline_speedups() {
    let n = 4_000_000;
    let list = gen::random_list(n, 3);
    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list);
    let ours1 = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
    let ours8 = SimRunner::new(Algorithm::ReidMiller, 8).rank(&list);
    // Paper: >8× over serial on one CPU; ≈50× on eight; ≈200× over the
    // workstation. The simulator's model overhang puts us slightly
    // below the paper's measured 8.3×; the orders must hold regardless.
    let s1 = serial.cycles.get() / ours1.cycles.get();
    let s8 = serial.cycles.get() / ours8.cycles.get();
    assert!(s1 > 5.5, "1-CPU speedup over serial {s1:.1}");
    assert!(s8 > 30.0, "8-CPU speedup over serial {s8:.1}");

    let big = gen::random_list(n, 4);
    let alpha = WorkstationModel::dec_alpha().run_rank(big.links(), big.head(), true);
    let vs_ws = alpha.ns_per_vertex / ours8.ns_per_vertex();
    assert!(vs_ws > 100.0, "8-CPU speedup over the Alpha {vs_ws:.0} (paper ≈200)");
}

#[test]
fn scan_slower_than_rank_by_the_packed_margin() {
    let n = 1_000_000;
    let list = gen::random_list(n, 5);
    let ones = vec![1i64; n];
    let rank = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
    let scan = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &ones, &AddOp);
    let ratio = scan.cycles.get() / rank.cycles.get();
    // Paper: 7.4 / 5.1 ≈ 1.45.
    assert!(ratio > 1.2 && ratio < 1.7, "scan/rank ratio {ratio:.2}");
}

#[test]
fn speedups_monotone_in_procs() {
    let n = 1_000_000;
    let list = gen::random_list(n, 6);
    let mut last = f64::INFINITY;
    for p in [1usize, 2, 4, 8, 16] {
        let c = SimRunner::new(Algorithm::ReidMiller, p).rank(&list).cycles.get();
        assert!(c < last, "p={p} must be faster than p/2");
        last = c;
    }
}

#[test]
fn wyllie_sawtooth_and_work_inefficiency() {
    // Work grows by a round each time n−1 crosses a power of two.
    let at = |n: usize| {
        SimRunner::new(Algorithm::Wyllie, 1).rank(&gen::random_list(n, 9)).cycles_per_vertex()
    };
    assert!(at(1026) > at(1025), "sawtooth step at 2^10+1");
    // And Wyllie is work-inefficient: per-vertex cost grows with n.
    assert!(at(1 << 18) > at(1 << 12));
}

#[test]
fn paper_ratio_anchors() {
    let n = 500_000;
    let list = gen::random_list(n, 10);
    let ours = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list).cycles.get();
    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list).cycles.get();
    let mr = SimRunner::new(Algorithm::MillerReif, 1).rank(&list).cycles.get();
    let am = SimRunner::new(Algorithm::AndersonMiller, 1).rank(&list).cycles.get();
    // Paper §2.3: MR ≈ 20× ours, 3.5× serial. §2.4: AM ≈ 3× faster than
    // MR, ≈7× slower than ours. Generous bands — the structure matters.
    assert!((10.0..35.0).contains(&(mr / ours)), "MR/ours {:.1}", mr / ours);
    assert!((2.5..5.0).contains(&(mr / serial)), "MR/serial {:.2}", mr / serial);
    assert!((1.8..4.5).contains(&(mr / am)), "MR/AM {:.2}", mr / am);
    assert!((4.0..14.0).contains(&(am / ours)), "AM/ours {:.1}", am / ours);
}
