//! Chaos tests: the serving stack under deterministic fault injection.
//!
//! A compact in-process version of `examples/chaos_soak`: N clients
//! drive a fault-armed daemon with a mixed PUT / rank-by-handle /
//! mutate workload, and three invariants must hold no matter what the
//! fault plane does:
//!
//! 1. every successful reply is byte-identical to a serial oracle;
//! 2. every failure is *typed* (an injected transport error or a
//!    known error code) — nothing silent, nothing unknown;
//! 3. after all clients disconnect the store is empty and the server
//!    drains to a clean exit.
//!
//! The quick soak rides every CI run; the heavy one is `#[ignore]`d
//! and picked up by the nightly `--include-ignored` pass.
#![cfg(unix)]

use engine::client::{Client, ClientError, RetryPolicy};
use engine::protocol::{self, ErrorCode, FrameKind};
use engine::server::{ServeConfig, Server};
use engine::{Engine, EngineConfig, FaultConfig, FaultPlane};
use listkit::dynamic::{Edit, MutableList};
use listkit::gen;
use listrank::{Algorithm, HostRunner};
use std::sync::Arc;

/// Silence the default panic report for *injected* worker panics (they
/// are caught and recovered by design); real panics keep reporting.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|m| m.contains("injected"))
                .or_else(|| info.payload().downcast_ref::<String>().map(|m| m.contains("injected")))
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// Upload the mirror under a fresh handle, riding out injected faults.
fn reput(client: &mut Client, mirror: &MutableList) -> u64 {
    let snapshot = mirror.snapshot();
    for _ in 0..200 {
        match client.put(&snapshot) {
            Ok(receipt) => return receipt.handle,
            Err(ClientError::Io(_)) => {
                let _ = client.reconnect();
            }
            Err(e) if e.server_code().is_some() => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => panic!("un-typed PUT failure: {e}"),
        }
    }
    panic!("PUT could not be placed in 200 attempts");
}

/// Run the soak; panics on any broken invariant. Returns the total
/// injected-fault count so callers can assert the storm was real.
fn soak(tag: &str, clients: usize, requests: usize, n: usize, spec: &str) -> u64 {
    quiet_injected_panics();
    let plane = Arc::new(FaultPlane::new(FaultConfig::parse(spec).expect("valid fault spec")));
    let path = std::env::temp_dir()
        .join(format!("rankd-chaos-{tag}-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let engine = Arc::new(Engine::new(
        EngineConfig::default().with_workers(2).with_fault(Arc::clone(&plane)),
    ));
    let server =
        Server::bind(Arc::clone(&engine), ServeConfig::new(&path).with_fault(Arc::clone(&plane)))
            .expect("bind chaos socket");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy::default().with_seed(0xC4A05 ^ (c as u64) << 8);
                let mut client = Client::connect_with_retry(&path, policy).expect("connect");
                let runner = HostRunner::new(Algorithm::ReidMiller);
                let fixed = gen::random_list(n, c as u64 * 7919);
                let mut mirror = MutableList::from_list(&fixed);
                let mut expected = runner.rank(&fixed);
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (c as u64) << 17;
                let mut pick = move |m: u64| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (rng >> 33) % m.max(1)
                };
                let mut handle = reput(&mut client, &mirror);
                for r in 0..requests {
                    if r % 5 == 4 {
                        // MUTATE: never retried; the mirror advances
                        // only on a confirmed apply, any failure
                        // resyncs from the unchanged mirror.
                        let len = mirror.len() as u64;
                        let a = pick(len) as u32;
                        let mut b = pick(len) as u32;
                        if b == a {
                            b = (a + 1) % len as u32;
                        }
                        let after = if pick(8) == 0 { None } else { Some(b) };
                        let edits = [
                            Edit::Splice { first: a, last: a, after },
                            Edit::Delete { v: pick(len) as u32 },
                            Edit::Append { count: 1 + pick(8) as u32 },
                        ];
                        let body = protocol::mutate_body(handle, &edits);
                        match client.mutate_encoded(&body) {
                            Ok(reply) if reply.applied as usize == edits.len() => {
                                mirror.apply(&edits).expect("valid batch");
                                assert_eq!(reply.len, mirror.len() as u64, "length parity");
                                expected = runner.rank(&mirror.snapshot());
                            }
                            Ok(reply) => {
                                panic!("partial mutate: {} of {}", reply.applied, edits.len())
                            }
                            Err(e) => {
                                match &e {
                                    ClientError::Io(_) => {
                                        let _ = client.reconnect();
                                    }
                                    _ if e.server_code().is_some() => {}
                                    _ => panic!("un-typed mutate failure: {e}"),
                                }
                                handle = reput(&mut client, &mirror);
                            }
                        }
                    } else {
                        let reply = if r % 3 == 0 {
                            client.rank_h_with_deadline(handle, 30_000)
                        } else {
                            let body = protocol::rank_h_body(handle, false);
                            client.request_encoded::<u64>(FrameKind::RankH, &body)
                        };
                        match reply {
                            Ok(served) => {
                                assert_eq!(served.output, expected, "rank parity (client {c})")
                            }
                            Err(ClientError::Io(_)) => {
                                let _ = client.reconnect();
                                handle = reput(&mut client, &mirror);
                            }
                            Err(e) => match e.server_code() {
                                Some(ErrorCode::StaleHandle) => {
                                    handle = reput(&mut client, &mirror);
                                }
                                Some(_) => {}
                                None => panic!("un-typed rank failure: {e}"),
                            },
                        }
                    }
                }
                let _ = client.drop_handle(handle);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("chaos client must uphold the oracle");
    }

    // Exact store accounting once every connection is gone.
    let mut probe = Client::connect_with_retry(&path, RetryPolicy::default().with_seed(0x960BE))
        .expect("probe");
    let v2 = probe.stats_v2().expect("stats_v2");
    assert_eq!(v2.store.resident_count, 0, "resident datasets after full disconnect");
    assert_eq!(v2.store.resident_bytes, 0, "resident bytes after full disconnect");
    drop(probe);

    // Clean daemon exit.
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
    drop(engine);
    plane.snapshot().total()
}

#[test]
fn quick_soak_under_default_fault_rates() {
    let injected = soak("quick", 3, 40, 600, "default");
    assert!(injected >= 1, "default rates over 120 requests must inject something");
}

#[test]
fn quick_soak_with_heavy_exec_panics() {
    // Panic-dominated storm: every ~20th job blows up in the worker;
    // the oracle and the store accounting must be untouched.
    let injected = soak("panics", 3, 40, 400, "exec_panic=0.05,io_err=0.01,short_write=0.01");
    assert!(injected >= 1);
}

/// The nightly long soak (`cargo test -- --include-ignored`): a
/// sustained storm at elevated rates, large enough that every fault
/// kind fires many times.
#[test]
#[ignore = "long soak; nightly runs it via --include-ignored"]
fn long_soak_at_elevated_rates() {
    let injected = soak(
        "nightly",
        8,
        400,
        2_000,
        "io_err=0.02,delay=2ms@0.05,short_write=0.02,exec_panic=0.02,store_err=0.01,seed=7",
    );
    assert!(injected >= 100, "an hour of storm must show a real fault count, got {injected}");
}
