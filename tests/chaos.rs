//! Chaos tests: the serving stack under deterministic fault injection.
//!
//! A compact in-process version of `examples/chaos_soak`: N clients
//! drive a fault-armed daemon with a mixed PUT / rank-by-handle /
//! mutate workload, and three invariants must hold no matter what the
//! fault plane does:
//!
//! 1. every successful reply is byte-identical to a serial oracle;
//! 2. every failure is *typed* (an injected transport error or a
//!    known error code) — nothing silent, nothing unknown;
//! 3. after all clients disconnect the store is empty and the server
//!    drains to a clean exit.
//!
//! Protocol v6 adds a pipelined variant of the storm: the same
//! invariants, but with up to 8 request-id-tagged frames in flight per
//! connection (over the Unix socket *and* the TCP listener), injected
//! short reads/writes landing mid-pipeline, and clients killed with a
//! full window outstanding — after which the store must be empty and
//! the scheduler's in-flight gauges must drain to zero.
//!
//! The quick soaks ride every CI run; the heavy ones are `#[ignore]`d
//! and picked up by the nightly `--include-ignored` pass.
#![cfg(unix)]

use engine::client::{Client, ClientError, RetryPolicy};
use engine::protocol::{self, ErrorCode, FrameKind, ReqFlags};
use engine::server::{ServeConfig, Server};
use engine::{Engine, EngineConfig, FaultConfig, FaultPlane};
use listkit::dynamic::{Edit, MutableList};
use listkit::gen;
use listrank::{Algorithm, HostRunner};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Silence the default panic report for *injected* worker panics (they
/// are caught and recovered by design); real panics keep reporting.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|m| m.contains("injected"))
                .or_else(|| info.payload().downcast_ref::<String>().map(|m| m.contains("injected")))
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// Upload the mirror under a fresh handle, riding out injected faults.
fn reput(client: &mut Client, mirror: &MutableList) -> u64 {
    let snapshot = mirror.snapshot();
    for _ in 0..200 {
        match client.put(&snapshot) {
            Ok(receipt) => return receipt.handle,
            Err(ClientError::Io(_)) => {
                let _ = client.reconnect();
            }
            Err(e) if e.server_code().is_some() => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => panic!("un-typed PUT failure: {e}"),
        }
    }
    panic!("PUT could not be placed in 200 attempts");
}

/// Run the soak; panics on any broken invariant. Returns the total
/// injected-fault count so callers can assert the storm was real.
fn soak(tag: &str, clients: usize, requests: usize, n: usize, spec: &str) -> u64 {
    quiet_injected_panics();
    let plane = Arc::new(FaultPlane::new(FaultConfig::parse(spec).expect("valid fault spec")));
    let path = std::env::temp_dir()
        .join(format!("rankd-chaos-{tag}-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let engine = Arc::new(Engine::new(
        EngineConfig::default().with_workers(2).with_fault(Arc::clone(&plane)),
    ));
    let server =
        Server::bind(Arc::clone(&engine), ServeConfig::new(&path).with_fault(Arc::clone(&plane)))
            .expect("bind chaos socket");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy::default().with_seed(0xC4A05 ^ (c as u64) << 8);
                let mut client = Client::connect_with_retry(&path, policy).expect("connect");
                let runner = HostRunner::new(Algorithm::ReidMiller);
                let fixed = gen::random_list(n, c as u64 * 7919);
                let mut mirror = MutableList::from_list(&fixed);
                let mut expected = runner.rank(&fixed);
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (c as u64) << 17;
                let mut pick = move |m: u64| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (rng >> 33) % m.max(1)
                };
                let mut handle = reput(&mut client, &mirror);
                for r in 0..requests {
                    if r % 5 == 4 {
                        // MUTATE: never retried; the mirror advances
                        // only on a confirmed apply, any failure
                        // resyncs from the unchanged mirror.
                        let len = mirror.len() as u64;
                        let a = pick(len) as u32;
                        let mut b = pick(len) as u32;
                        if b == a {
                            b = (a + 1) % len as u32;
                        }
                        let after = if pick(8) == 0 { None } else { Some(b) };
                        let edits = [
                            Edit::Splice { first: a, last: a, after },
                            Edit::Delete { v: pick(len) as u32 },
                            Edit::Append { count: 1 + pick(8) as u32 },
                        ];
                        let body = protocol::mutate_body(handle, &edits);
                        match client.mutate_encoded(&body) {
                            Ok(reply) if reply.applied as usize == edits.len() => {
                                mirror.apply(&edits).expect("valid batch");
                                assert_eq!(reply.len, mirror.len() as u64, "length parity");
                                expected = runner.rank(&mirror.snapshot());
                            }
                            Ok(reply) => {
                                panic!("partial mutate: {} of {}", reply.applied, edits.len())
                            }
                            Err(e) => {
                                match &e {
                                    ClientError::Io(_) => {
                                        let _ = client.reconnect();
                                    }
                                    _ if e.server_code().is_some() => {}
                                    _ => panic!("un-typed mutate failure: {e}"),
                                }
                                handle = reput(&mut client, &mirror);
                            }
                        }
                    } else {
                        let reply = if r % 3 == 0 {
                            client.rank_h_with_deadline(handle, 30_000)
                        } else {
                            let body = protocol::rank_h_body(handle, false);
                            client.request_encoded::<u64>(FrameKind::RankH, &body)
                        };
                        match reply {
                            Ok(served) => {
                                assert_eq!(served.output, expected, "rank parity (client {c})")
                            }
                            Err(ClientError::Io(_)) => {
                                let _ = client.reconnect();
                                handle = reput(&mut client, &mirror);
                            }
                            Err(e) => match e.server_code() {
                                Some(ErrorCode::StaleHandle) => {
                                    handle = reput(&mut client, &mirror);
                                }
                                Some(_) => {}
                                None => panic!("un-typed rank failure: {e}"),
                            },
                        }
                    }
                }
                let _ = client.drop_handle(handle);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("chaos client must uphold the oracle");
    }

    // Exact store accounting once every connection is gone.
    let mut probe = Client::connect_with_retry(&path, RetryPolicy::default().with_seed(0x960BE))
        .expect("probe");
    let v2 = probe.stats_v2().expect("stats_v2");
    assert_eq!(v2.store.resident_count, 0, "resident datasets after full disconnect");
    assert_eq!(v2.store.resident_bytes, 0, "resident bytes after full disconnect");
    drop(probe);

    // Clean daemon exit.
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
    drop(engine);
    plane.snapshot().total()
}

/// The pipelined storm: every client keeps up to `depth` request-id
/// tagged rank-by-handle frames in flight on one connection while the
/// fault plane injects I/O errors, delays, and short reads/writes
/// mid-pipeline. Invariants are the serial soak's, plus: a connection
/// killed by a fault forfeits its outstanding window (those replies
/// are gone with the socket), and the client must be able to resync —
/// reconnect, re-PUT, restart the pipeline — without the oracle ever
/// drifting. Runs over the Unix socket or the TCP listener.
fn pipelined_soak(
    tag: &str,
    clients: usize,
    requests: usize,
    n: usize,
    spec: &str,
    depth: usize,
    tcp: bool,
) -> u64 {
    quiet_injected_panics();
    let plane = Arc::new(FaultPlane::new(FaultConfig::parse(spec).expect("valid fault spec")));
    let path = std::env::temp_dir()
        .join(format!("rankd-chaos-{tag}-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let engine = Arc::new(Engine::new(
        EngineConfig::default().with_workers(2).with_fault(Arc::clone(&plane)),
    ));
    let mut cfg = ServeConfig::new(&path).with_fault(Arc::clone(&plane));
    if tcp {
        cfg = cfg.with_tcp(Some("127.0.0.1:0".to_string()));
    }
    let server = Server::bind(Arc::clone(&engine), cfg).expect("bind chaos socket");
    let tcp_addr = server.tcp_local_addr().map(|a| a.to_string());
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let connect = move |path: &str, tcp_addr: &Option<String>, seed: u64| -> Client {
        let policy = RetryPolicy::default().with_seed(seed);
        match tcp_addr {
            Some(addr) => {
                Client::connect_tcp_with_retry(addr.as_str(), policy).expect("connect tcp")
            }
            None => Client::connect_with_retry(path, policy).expect("connect"),
        }
    };

    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let path = path.clone();
            let tcp_addr = tcp_addr.clone();
            std::thread::spawn(move || {
                let mut client = connect(&path, &tcp_addr, 0xC4A05 ^ (c as u64) << 8);
                let runner = HostRunner::new(Algorithm::ReidMiller);
                let fixed = gen::random_list(n, c as u64 * 7919);
                let mirror = MutableList::from_list(&fixed);
                let expected = runner.rank(&fixed);
                let mut handle = reput(&mut client, &mirror);

                let mut sent = 0usize;
                let mut received = 0usize;
                let mut next_id = 1u64;
                while received < requests {
                    // Fill the window. `send_encoded` is fire-and-forget:
                    // a failed send means the connection is gone and the
                    // whole outstanding window is forfeit.
                    let mut broke = false;
                    while sent - received < depth && sent < requests {
                        let mut flags = ReqFlags::default().with_request_id(next_id);
                        if sent.is_multiple_of(3) {
                            flags = flags.with_deadline_ms(30_000);
                        }
                        let body = protocol::rank_h_body_flags(handle, flags);
                        match client.send_encoded(FrameKind::RankH, &body) {
                            Ok(()) => {
                                sent += 1;
                                next_id += 1;
                            }
                            Err(_) => {
                                broke = true;
                                break;
                            }
                        }
                    }
                    if !broke {
                        match client.recv_pipelined::<u64>() {
                            Ok((_id, Ok(served))) => {
                                assert_eq!(
                                    served.output, expected,
                                    "pipelined rank parity (client {c})"
                                );
                                received += 1;
                            }
                            Ok((_id, Err(e))) => {
                                // Typed per-request refusal mid-pipeline
                                // (deadline, stale handle, shed, quota…).
                                match e.server_code() {
                                    Some(ErrorCode::StaleHandle) => {
                                        handle = reput(&mut client, &mirror);
                                    }
                                    Some(_) => {}
                                    None => panic!("un-typed pipelined refusal: {e}"),
                                }
                                received += 1;
                            }
                            Err(ClientError::Io(_)) => broke = true,
                            Err(e) => panic!("un-typed pipelined failure: {e}"),
                        }
                    }
                    if broke {
                        // Killed mid-pipeline: the outstanding window is
                        // lost with the socket. Resync and carry on.
                        received = sent;
                        let _ = client.reconnect();
                        handle = reput(&mut client, &mirror);
                    }
                }
                let _ = client.drop_handle(handle);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("pipelined chaos client must uphold the oracle");
    }

    // Exact store + scheduler accounting once every connection is gone:
    // no resident bytes, and the in-flight gauges fully drained.
    let mut probe = connect(&path, &tcp_addr, 0x960BE);
    let deadline = Instant::now() + Duration::from_secs(10);
    let v2 = loop {
        match probe.stats_v2() {
            Ok(v2) if v2.sched.inflight_interactive == 0 && v2.sched.inflight_batch == 0 => {
                break v2
            }
            Ok(_) | Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
                let _ = probe.reconnect();
            }
            Ok(v2) => break v2,
            Err(e) => panic!("stats probe could not get through: {e}"),
        }
    };
    assert_eq!(v2.store.resident_count, 0, "resident datasets after full disconnect");
    assert_eq!(v2.store.resident_bytes, 0, "resident bytes after full disconnect");
    assert_eq!(v2.sched.inflight_interactive, 0, "interactive in-flight gauge must drain");
    assert_eq!(v2.sched.inflight_batch, 0, "batch in-flight gauge must drain");
    assert!(v2.sched.pipelined_requests > 0, "the storm must actually have pipelined");
    drop(probe);

    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
    drop(engine);
    plane.snapshot().total()
}

#[test]
fn quick_soak_under_default_fault_rates() {
    let injected = soak("quick", 3, 40, 600, "default");
    assert!(injected >= 1, "default rates over 120 requests must inject something");
}

#[test]
fn quick_soak_with_heavy_exec_panics() {
    // Panic-dominated storm: every ~20th job blows up in the worker;
    // the oracle and the store accounting must be untouched.
    let injected = soak("panics", 3, 40, 400, "exec_panic=0.05,io_err=0.01,short_write=0.01");
    assert!(injected >= 1);
}

#[test]
fn quick_pipelined_soak_under_faults_unix() {
    // Short reads/writes and I/O errors landing mid-pipeline over the
    // Unix socket; depth-8 windows.
    let injected = pipelined_soak(
        "pipe-unix",
        3,
        60,
        600,
        "io_err=0.01,short_write=0.03,delay=1ms@0.03,seed=11",
        8,
        false,
    );
    assert!(injected >= 1, "the pipelined storm must inject something");
}

#[test]
fn quick_pipelined_soak_under_faults_tcp() {
    // Same storm through the TCP listener: one reactor, two transports,
    // identical invariants.
    let injected = pipelined_soak(
        "pipe-tcp",
        3,
        60,
        600,
        "io_err=0.01,short_write=0.03,exec_panic=0.02,seed=13",
        8,
        true,
    );
    assert!(injected >= 1, "the pipelined storm must inject something");
}

/// A client killed with a full window of 8 frames in flight: the
/// daemon must finish or discard the orphaned jobs, settle the quota
/// ledger via `drop_tenant`, release every resident dataset, and drain
/// the scheduler's in-flight gauges to exactly zero — no faults armed,
/// so the accounting must be *exact*, not approximate.
#[test]
fn client_killed_with_eight_frames_in_flight_settles_accounting() {
    let path = std::env::temp_dir()
        .join(format!("rankd-chaos-kill8-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let engine = Arc::new(Engine::new(EngineConfig::default().with_workers(2)));
    let server = Server::bind(Arc::clone(&engine), ServeConfig::new(&path).with_inflight_quota(8))
        .expect("bind chaos socket");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&path).expect("connect");
    let fixed = gen::random_list(60_000, 9);
    let handle = client.put(&fixed).expect("put").handle;
    for id in 1..=8u64 {
        client.send_rank_h(handle, id).expect("pipelined send");
    }
    // Kill the connection with the full window outstanding.
    drop(client);

    let mut probe = Client::connect(&path).expect("probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    let v2 = loop {
        let v2 = probe.stats_v2().expect("stats_v2");
        let drained = v2.sched.inflight_interactive == 0
            && v2.sched.inflight_batch == 0
            && v2.store.resident_count == 0;
        if drained || Instant::now() >= deadline {
            break v2;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(v2.store.resident_count, 0, "orphaned handle must be released");
    assert_eq!(v2.store.resident_bytes, 0, "orphaned bytes must be released");
    assert_eq!(v2.sched.inflight_interactive, 0, "in-flight gauge must drain after the kill");
    assert_eq!(v2.sched.inflight_batch, 0);
    assert_eq!(v2.sched.pipelined_requests, 8, "all eight frames were admitted");
    assert_eq!(v2.sched.quota_rejected_inflight, 0, "the window exactly fills the quota");
    drop(probe);

    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
    drop(engine);
}

/// The nightly long soak (`cargo test -- --include-ignored`): a
/// sustained storm at elevated rates, large enough that every fault
/// kind fires many times.
#[test]
#[ignore = "long soak; nightly runs it via --include-ignored"]
fn long_soak_at_elevated_rates() {
    let injected = soak(
        "nightly",
        8,
        400,
        2_000,
        "io_err=0.02,delay=2ms@0.05,short_write=0.02,exec_panic=0.02,store_err=0.01,seed=7",
    );
    assert!(injected >= 100, "an hour of storm must show a real fault count, got {injected}");
}

/// The nightly pipelined storm: elevated fault rates, deep windows,
/// over TCP — the harshest path through the reactor (partial frames on
/// both sides of every connection, windows forfeited and resynced).
#[test]
#[ignore = "long pipelined storm; nightly runs it via --include-ignored"]
fn long_pipelined_storm_over_tcp() {
    let injected = pipelined_soak(
        "pipe-nightly",
        8,
        400,
        2_000,
        "io_err=0.02,delay=2ms@0.05,short_write=0.04,exec_panic=0.02,seed=17",
        8,
        true,
    );
    assert!(injected >= 100, "a real storm must show a real fault count, got {injected}");
}
