//! Cross-backend equivalence: every algorithm × every backend must
//! compute exactly the serial reference, across sizes, layouts,
//! operators and processor counts.

use cray_list_ranking::prelude::*;
use listkit::gen::{self, Layout};
use listkit::ops::{Affine, AffineOp};

#[test]
fn all_algorithms_all_backends_rank() {
    for n in [1usize, 2, 3, 64, 1000, 20_000] {
        let list = gen::random_list(n, n as u64 * 7 + 1);
        let reference = listkit::serial::rank(&list);
        for alg in Algorithm::ALL {
            assert_eq!(HostRunner::new(alg).rank(&list), reference, "host {alg} n={n}");
            assert_eq!(SimRunner::new(alg, 1).rank(&list).out, reference, "sim {alg} n={n}");
        }
    }
}

#[test]
fn all_layouts_agree() {
    let n = 30_000;
    for (name, layout) in [
        ("sequential", Layout::Sequential),
        ("reversed", Layout::Reversed),
        ("strided", Layout::Strided(7)),
        ("blocked", Layout::Blocked(64)),
        ("random", Layout::Random),
    ] {
        let list = gen::list_with_layout(n, layout, 5);
        let reference = listkit::serial::rank(&list);
        for alg in Algorithm::ALL {
            assert_eq!(HostRunner::new(alg).rank(&list), reference, "{alg} on {name}");
        }
    }
}

#[test]
fn sim_procs_do_not_change_results() {
    let n = 40_000;
    let list = gen::random_list(n, 77);
    let vals: Vec<i64> = (0..n as i64).map(|i| i % 97 - 48).collect();
    let reference = listkit::serial::scan(&list, &vals, &AddOp);
    for alg in Algorithm::ALL {
        for p in [1usize, 2, 4, 8, 16] {
            let run = SimRunner::new(alg, p).scan(&list, &vals, &AddOp);
            assert_eq!(run.out, reference, "{alg} p={p}");
        }
    }
}

#[test]
fn host_threads_do_not_change_results() {
    let n = 60_000;
    let list = gen::random_list(n, 3);
    let reference = listkit::serial::rank(&list);
    for t in [1usize, 2, 3, 8] {
        for alg in [Algorithm::Wyllie, Algorithm::ReidMiller] {
            assert_eq!(
                HostRunner::new(alg).with_threads(t).rank(&list),
                reference,
                "{alg} threads={t}"
            );
        }
    }
}

#[test]
fn noncommutative_scan_everywhere() {
    let n = 8_000;
    let list = gen::random_list(n, 13);
    let funcs: Vec<Affine> =
        (0..n).map(|i| Affine::new((i % 5) as i64 - 2, (i % 11) as i64 - 5)).collect();
    let reference = listkit::serial::scan(&list, &funcs, &AffineOp);
    for alg in Algorithm::ALL {
        assert_eq!(HostRunner::new(alg).scan(&list, &funcs, &AffineOp), reference, "host {alg}");
        assert_eq!(
            SimRunner::new(alg, 4).scan(&list, &funcs, &AffineOp).out,
            reference,
            "sim {alg}"
        );
    }
}

#[test]
fn max_min_xor_operators() {
    let n = 10_000;
    let list = gen::random_list(n, 21);
    let ivals: Vec<i64> = (0..n as i64).map(|i| (i * 31) % 1009 - 500).collect();
    let uvals: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let runner = HostRunner::new(Algorithm::ReidMiller);
    assert_eq!(runner.scan(&list, &ivals, &MaxOp), listkit::serial::scan(&list, &ivals, &MaxOp));
    assert_eq!(runner.scan(&list, &ivals, &MinOp), listkit::serial::scan(&list, &ivals, &MinOp));
    assert_eq!(runner.scan(&list, &uvals, &XorOp), listkit::serial::scan(&list, &uvals, &XorOp));
}

#[test]
fn rank_is_scan_of_ones() {
    let n = 15_000;
    let list = gen::random_list(n, 8);
    let ones = vec![1i64; n];
    for alg in Algorithm::ALL {
        let runner = HostRunner::new(alg);
        let rank = runner.rank(&list);
        let scanned = runner.scan(&list, &ones, &AddOp);
        assert!(
            rank.iter().zip(&scanned).all(|(&r, &s)| r as i64 == s),
            "{alg}: rank must equal scan of ones"
        );
    }
}
