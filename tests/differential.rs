//! Differential-oracle harness: adversarial list topologies, ranked by
//! every `Algorithm::ALL` host backend *and* the shard-parallel path,
//! asserted byte-identical to the `listkit::serial` oracle — under
//! fixed seeds, so a failure replays exactly.
//!
//! Topology zoo (each is adversarial for a different implementation
//! detail):
//!
//! * **single chain** (sequential layout) — fragments never break, the
//!   degenerate best case for sharding;
//! * **reversed** — tests that nothing confuses index order with list
//!   order;
//! * **all-singleton fragments** (stride ≥ shard size) — every vertex
//!   exits its shard immediately: the contracted boundary list is as
//!   long as the input;
//! * **random permutation** — the paper's workload and the
//!   shard-boundary-heavy case;
//! * **tiny blocks** — fragment boundaries land just past every block;
//! * sizes 0 / 1 / 2 / odd / pow2 ± 1 — off-by-one soup around every
//!   cutoff in the stack.

use engine::{Engine, EngineConfig, JobOptions, Request};
use listkit::gen::{self, Layout};
use listkit::sharded::ShardedList;
use listkit::LinkedList;
use listrank::host::rank_sharded;
use listrank::{Algorithm, HostRunner};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Fixed master seed: every generated list below is a deterministic
/// function of it, the size and the topology tag.
const SEED: u64 = 0xD1FF_0C90;

/// The adversarial sizes: degenerate, odd, and power-of-two straddles
/// around the serial/batching/sharding cutoffs used in the tests.
const SIZES: [usize; 11] = [1, 2, 3, 5, 127, 128, 129, 1023, 1024, 1025, 20_000];

fn coprime_stride(n: usize, at_least: usize) -> usize {
    let mut s = at_least.max(2).min(n.saturating_sub(1).max(1));
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    while gcd(s, n) != 1 {
        s += 1;
    }
    s
}

/// Every topology in the zoo at size `n` (skipping the ones a given
/// `n` cannot express, e.g. strides on lists of ≤ 2 vertices).
fn topologies(n: usize) -> Vec<(String, LinkedList)> {
    let seed = SEED ^ (n as u64).wrapping_mul(0x9e37_79b9);
    let mut out = vec![
        ("single-chain".to_string(), gen::sequential_list(n)),
        ("reversed".to_string(), gen::list_with_layout(n, Layout::Reversed, seed)),
        ("random".to_string(), gen::list_with_layout(n, Layout::Random, seed)),
        ("tiny-blocks".to_string(), gen::list_with_layout(n, Layout::Blocked(3), seed)),
    ];
    if n > 2 {
        // Stride past the shard size used below: every fragment is a
        // singleton, the worst case for the boundary table.
        let stride = coprime_stride(n, 70);
        if stride < n {
            out.push((
                format!("stride-{stride}"),
                gen::list_with_layout(n, Layout::Strided(stride), seed),
            ));
        }
    }
    out
}

#[test]
fn empty_lists_cannot_exist() {
    // Size 0 has no oracle: the representation rejects it everywhere,
    // so no backend can be handed an empty list in the first place.
    assert!(LinkedList::new(vec![], 0).is_err());
    assert!(LinkedList::from_order(&[]).is_err());
}

#[test]
fn every_backend_matches_serial_on_every_topology() {
    for n in SIZES {
        for (name, list) in topologies(n) {
            let oracle = listkit::serial::rank(&list);
            for alg in Algorithm::ALL {
                let got = HostRunner::new(alg).with_seed(SEED ^ n as u64).rank(&list);
                assert_eq!(got, oracle, "{alg} diverged on {name} n={n}");
            }
        }
    }
}

#[test]
fn sharded_path_matches_serial_on_every_topology() {
    for n in SIZES {
        for (name, list) in topologies(n) {
            let oracle = listkit::serial::rank(&list);
            // Shard sizes below, at, and above the boundary-heavy
            // stride, plus the degenerate one-vertex-per-shard split.
            for shard_size in [1usize, 7, 64, 4096] {
                let sharded = ShardedList::build(&list, shard_size);
                assert_eq!(
                    sharded.rank(),
                    oracle,
                    "substrate sharded rank diverged on {name} n={n} shard={shard_size}"
                );
                let (got, report) = rank_sharded(&list, shard_size, SEED ^ n as u64);
                assert_eq!(
                    got, oracle,
                    "dispatched sharded rank diverged on {name} n={n} shard={shard_size}"
                );
                assert_eq!(report.shards, n.div_ceil(shard_size));
                // The boundary table always partitions the vertices.
                let covered: u64 = sharded.boundary().lens().iter().map(|&l| l as u64).sum();
                assert_eq!(covered, n as u64);
            }
        }
    }
}

#[test]
fn engine_sharded_jobs_match_serial_on_every_topology() {
    // The same zoo through the engine's RankSharded path, with a budget
    // small enough that the larger sizes genuinely shard. One engine
    // serves every job (exactly the serving-system configuration).
    let engine = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_inner_threads(2)
            .with_shard_budget(512)
            .with_queue_capacity(128),
    );
    let mut pending = Vec::new();
    for n in SIZES {
        for (name, list) in topologies(n) {
            let oracle = listkit::serial::rank(&list);
            let req = Request::rank_sharded(Arc::new(list));
            let opts = JobOptions { seed: SEED ^ n as u64, algorithm: None, ..Default::default() };
            let handle = engine.submit_with(req, opts).expect("submit");
            pending.push((n, name, oracle, handle));
        }
    }
    for (n, name, oracle, handle) in pending {
        let report = handle.wait().expect("job completes");
        assert_eq!(report.output, oracle, "engine sharded diverged on {name} n={n}");
        assert_eq!(report.shards > 0, n > 512, "budget decides sharding for {name} n={n}");
    }
    let stats = engine.shutdown();
    assert!(stats.sharded_jobs > 0, "the zoo exercised the sharded path");
}

#[test]
fn scan_backends_match_serial_oracle() {
    // The differential net over the scan entry points (the engine's
    // other job kind), with a value pattern that detects misalignment.
    use listkit::ops::AddOp;
    for n in [1usize, 2, 129, 1025] {
        for (name, list) in topologies(n) {
            let values: Vec<i64> = (0..n as i64).map(|i| i * 3 - 7).collect();
            let oracle = listkit::serial::scan(&list, &values, &AddOp);
            for alg in Algorithm::ALL {
                let got =
                    HostRunner::new(alg).with_seed(SEED ^ n as u64).scan(&list, &values, &AddOp);
                assert_eq!(got, oracle, "{alg} scan diverged on {name} n={n}");
            }
        }
    }
}

/// One engine serves every generic-op differential job below (the
/// serving-system configuration: histories accumulate across cases).
fn ops_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig::default().with_workers(2).with_queue_capacity(256))
    })
}

/// Route every operator through the engine's typed API over `list` and
/// byte-compare with the `listkit::serial` oracle. `seed` perturbs the
/// value patterns so proptest explores the payload space too.
fn check_all_ops_against_serial(name: &str, list: LinkedList, seed: u64) {
    use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, MinOp, XorOp};
    use listkit::segmented;
    let n = list.len();
    let engine = ops_engine();
    let list = Arc::new(list);
    let s = seed as i64 | 1;
    let i64s: Arc<Vec<i64>> =
        Arc::new((0..n as i64).map(|i| (i.wrapping_mul(s) % 37) - 18).collect());
    let u64s: Arc<Vec<u64>> =
        Arc::new((0..n as u64).map(|i| i.wrapping_mul(seed | 1) ^ (i << 7)).collect());
    // Affine is the non-commutative ordering trap: coefficients vary by
    // vertex so any operand swap or fragment reorder shows up.
    let affs: Arc<Vec<Affine>> = Arc::new(
        (0..n as i64).map(|i| Affine::new((i.wrapping_add(s) % 5) - 2, (i % 11) - 5)).collect(),
    );
    let starts: Arc<Vec<bool>> =
        Arc::new((0..n as u64).map(|v| v.wrapping_mul(seed | 1) % 17 == 0).collect());

    let add = engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), AddOp)).unwrap();
    let max = engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), MaxOp)).unwrap();
    let min = engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), MinOp)).unwrap();
    let xor = engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&u64s), XorOp)).unwrap();
    let aff = engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&affs), AffineOp)).unwrap();
    let seg = engine
        .submit(Request::segmented_scan(
            Arc::clone(&list),
            Arc::clone(&i64s),
            Arc::clone(&starts),
            AddOp,
        ))
        .unwrap();

    assert_eq!(
        add.wait().unwrap().output,
        listkit::serial::scan(&list, &i64s, &AddOp),
        "add diverged on {name} n={n}"
    );
    assert_eq!(
        max.wait().unwrap().output,
        listkit::serial::scan(&list, &i64s, &MaxOp),
        "max diverged on {name} n={n}"
    );
    assert_eq!(
        min.wait().unwrap().output,
        listkit::serial::scan(&list, &i64s, &MinOp),
        "min diverged on {name} n={n}"
    );
    assert_eq!(
        xor.wait().unwrap().output,
        listkit::serial::scan(&list, &u64s, &XorOp),
        "xor diverged on {name} n={n}"
    );
    assert_eq!(
        aff.wait().unwrap().output,
        listkit::serial::scan(&list, &affs, &AffineOp),
        "affine diverged on {name} n={n}"
    );
    assert_eq!(
        seg.wait().unwrap().output,
        segmented::serial_segmented_scan(&list, &i64s, &starts, &AddOp),
        "segmented diverged on {name} n={n}"
    );
}

#[test]
fn every_op_through_engine_matches_serial_on_every_topology() {
    // The whole zoo, every operator (including the segmented and the
    // non-commutative cases), through one adaptive engine.
    for n in [1usize, 2, 129, 1025, 20_000] {
        for (name, list) in topologies(n) {
            check_all_ops_against_serial(&name, list, SEED ^ n as u64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential-oracle property: for *any* size, topology and
    /// value seed, every operator routed through the engine is
    /// byte-identical to `listkit::serial::scan`.
    #[test]
    fn engine_ops_differential(n in 1usize..3000, topo in 0usize..5, seed in any::<u64>()) {
        let zoo = topologies(n);
        let (name, list) = zoo[topo % zoo.len()].clone();
        check_all_ops_against_serial(&name, list, seed);
    }
}

/// Every topology generator really is a permutation of `0..n` — the
/// oracle itself is only meaningful if the inputs are valid lists.
#[test]
fn topology_zoo_is_structurally_valid() {
    for n in SIZES {
        for (name, list) in topologies(n) {
            assert_eq!(list.len(), n, "{name}");
            let mut order = list.order();
            order.sort_unstable();
            assert!(
                order.iter().enumerate().all(|(i, &v)| v as usize == i),
                "{name} n={n} is not a permutation"
            );
        }
    }
}

#[test]
fn resident_dataset_rank_matches_serial_on_every_topology() {
    // The handle path's engine half: datasets resident in a
    // `DatasetStore`, ranked through the prebuilt-artifact fast path
    // (`Request::with_artifacts`), byte-compared with the serial
    // oracle. Each dataset is ranked twice so both halves of the
    // artifact cache — the build and the reuse — face the zoo.
    use engine::DatasetStore;
    let engine = Engine::new(
        EngineConfig::default().with_workers(2).with_shard_budget(512).with_queue_capacity(128),
    );
    let store = Arc::new(DatasetStore::new(1 << 30));
    for n in [127usize, 1025, 20_000] {
        for (name, list) in topologies(n) {
            let oracle = listkit::serial::rank(&list);
            let receipt = store.put(1, Arc::new(list)).expect("put fits the budget");
            let entry = store.get(receipt.handle, 1).expect("resident");
            for pass in 0..2 {
                let req = Request::rank_sharded(entry.list()).with_artifacts(entry.artifacts());
                let opts =
                    JobOptions { seed: SEED ^ n as u64, algorithm: None, ..Default::default() };
                let report = engine.submit_with(req, opts).expect("submit").wait().expect("job");
                assert_eq!(
                    report.output, oracle,
                    "prebuilt rank diverged on {name} n={n} pass={pass}"
                );
            }
            store.drop_dataset(receipt.handle, 1).expect("drop");
        }
    }
    let st = store.stats();
    assert!(st.artifacts_built > 0, "large zoo members built sharded artifacts");
    assert!(st.artifacts_reused > 0, "second passes reused cached artifacts");
    engine.shutdown();
}

#[test]
fn resident_dataset_ops_match_serial_on_every_topology() {
    // Every operator (add/max/min/xor/affine/segmented) over a
    // *resident* dataset, prebuilt artifacts attached, vs the same op
    // submitted inline over the identical list — both must equal the
    // serial oracle, so the handle data plane can never drift from the
    // inline one.
    use engine::DatasetStore;
    use listkit::ops::{AddOp, AffineOp, MaxOp, MinOp, XorOp};
    use listkit::segmented;
    let engine = ops_engine();
    let store = Arc::new(DatasetStore::new(1 << 30));
    for n in [2usize, 129, 1025] {
        for (name, list) in topologies(n) {
            let receipt = store.put(7, Arc::new(list)).expect("put fits");
            let entry = store.get(receipt.handle, 7).expect("resident");
            let list = entry.list();
            let seed = SEED ^ n as u64;
            let s = seed as i64 | 1;
            let i64s: Arc<Vec<i64>> =
                Arc::new((0..n as i64).map(|i| (i.wrapping_mul(s) % 37) - 18).collect());
            let u64s: Arc<Vec<u64>> =
                Arc::new((0..n as u64).map(|i| i.wrapping_mul(seed | 1) ^ (i << 7)).collect());
            let affs: Arc<Vec<listkit::ops::Affine>> = Arc::new(
                (0..n as i64)
                    .map(|i| listkit::ops::Affine::new((i.wrapping_add(s) % 5) - 2, (i % 11) - 5))
                    .collect(),
            );
            let starts: Arc<Vec<bool>> =
                Arc::new((0..n as u64).map(|v| v.wrapping_mul(seed | 1) % 17 == 0).collect());

            let rank = Request::rank(Arc::clone(&list)).with_artifacts(entry.artifacts());
            let add = Request::scan(Arc::clone(&list), Arc::clone(&i64s), AddOp)
                .with_artifacts(entry.artifacts());
            let max = Request::scan(Arc::clone(&list), Arc::clone(&i64s), MaxOp)
                .with_artifacts(entry.artifacts());
            let min = Request::scan(Arc::clone(&list), Arc::clone(&i64s), MinOp)
                .with_artifacts(entry.artifacts());
            let xor = Request::scan(Arc::clone(&list), Arc::clone(&u64s), XorOp)
                .with_artifacts(entry.artifacts());
            let aff = Request::scan(Arc::clone(&list), Arc::clone(&affs), AffineOp)
                .with_artifacts(entry.artifacts());
            let seg = Request::segmented_scan(
                Arc::clone(&list),
                Arc::clone(&i64s),
                Arc::clone(&starts),
                AddOp,
            )
            .with_artifacts(entry.artifacts());

            let rank = engine.submit(rank).unwrap();
            let add = engine.submit(add).unwrap();
            let max = engine.submit(max).unwrap();
            let min = engine.submit(min).unwrap();
            let xor = engine.submit(xor).unwrap();
            let aff = engine.submit(aff).unwrap();
            let seg = engine.submit(seg).unwrap();

            assert_eq!(
                rank.wait().unwrap().output,
                listkit::serial::rank(&list),
                "resident rank diverged on {name} n={n}"
            );
            assert_eq!(
                add.wait().unwrap().output,
                listkit::serial::scan(&list, &i64s, &AddOp),
                "resident add diverged on {name} n={n}"
            );
            assert_eq!(
                max.wait().unwrap().output,
                listkit::serial::scan(&list, &i64s, &MaxOp),
                "resident max diverged on {name} n={n}"
            );
            assert_eq!(
                min.wait().unwrap().output,
                listkit::serial::scan(&list, &i64s, &MinOp),
                "resident min diverged on {name} n={n}"
            );
            assert_eq!(
                xor.wait().unwrap().output,
                listkit::serial::scan(&list, &u64s, &XorOp),
                "resident xor diverged on {name} n={n}"
            );
            assert_eq!(
                aff.wait().unwrap().output,
                listkit::serial::scan(&list, &affs, &AffineOp),
                "resident affine diverged on {name} n={n}"
            );
            assert_eq!(
                seg.wait().unwrap().output,
                segmented::serial_segmented_scan(&list, &i64s, &starts, &AddOp),
                "resident segmented diverged on {name} n={n}"
            );
            store.drop_dataset(receipt.handle, 7).expect("drop");
        }
    }
    assert_eq!(store.stats().resident_count, 0, "every dataset was dropped");
}

/// One valid random batch of edits against `snapshot`: a short-run
/// splice (walked along the real successor links so it is always a
/// run), usually a delete, and an append — composition varies with the
/// seed stream so sequences explore interleavings, not one shape.
fn random_edit_batch(
    snapshot: &LinkedList,
    rng: &mut impl FnMut() -> u64,
) -> Vec<listkit::dynamic::Edit> {
    use listkit::dynamic::Edit;
    let len = snapshot.len() as u64;
    let mut edits = Vec::new();
    if len >= 4 {
        let links = snapshot.links();
        let first = (rng() % len) as u32;
        let mut last = first;
        let mut run = vec![first];
        for _ in 0..rng() % 3 {
            let nxt = links[last as usize];
            if nxt == last {
                break; // the run reached the tail
            }
            last = nxt;
            run.push(last);
        }
        let after = if rng().is_multiple_of(8) {
            None
        } else {
            // Any target outside the run (len ≥ 4 > run length ≤ 3
            // guarantees one exists within a few probes).
            let mut b = (rng() % len) as u32;
            while run.contains(&b) {
                b = (b + 1) % len as u32;
            }
            Some(b)
        };
        edits.push(Edit::Splice { first, last, after });
        if rng().is_multiple_of(2) {
            edits.push(Edit::Delete { v: (rng() % len) as u32 });
        }
    } else if len >= 2 && rng().is_multiple_of(2) {
        edits.push(Edit::Delete { v: (rng() % len) as u32 });
    }
    edits.push(Edit::Append { count: 1 + (rng() % 6) as u32 });
    edits
}

/// The dynamic-lists oracle: apply `batches` random mutation batches
/// to a resident copy of `list` and, after every batch, byte-compare
/// every cached sharded artifact's rank *and* add-scan against a
/// from-scratch serial pass over the post-mutation list. All
/// `shard_sizes` × `lanes_set` artifacts are primed up front, so each
/// batch maintains each of them (incrementally or by rebuild, per the
/// planner) and each must stay byte-identical.
fn check_mutation_sequences(
    name: &str,
    list: LinkedList,
    seed: u64,
    batches: usize,
    shard_sizes: &[usize],
    lanes_set: &[usize],
) {
    use engine::{DatasetStore, Planner};
    use listkit::dynamic::MutableList;
    use listkit::ops::AddOp;
    const CONN: u64 = 11;
    let store = Arc::new(DatasetStore::new(1 << 30));
    let planner = Planner::new(4);
    let mut mirror = MutableList::from_list(&list);
    let receipt = store.put(CONN, Arc::new(list)).expect("put fits");
    let entry = store.get(receipt.handle, CONN).expect("resident");
    for &shard in shard_sizes {
        for &lanes in lanes_set {
            entry.artifacts().get_or_build(&entry.list(), shard, lanes);
        }
    }
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for batch in 0..batches {
        let edits = random_edit_batch(&entry.list(), &mut rng);
        mirror.apply(&edits).expect("mirror accepts the batch");
        let out = engine::dynamic::mutate(&store, &planner, receipt.handle, CONN, &edits)
            .expect("store accepts the batch");
        assert_eq!(out.len as usize, mirror.len(), "{name} batch {batch}: length drift");
        assert_eq!(
            out.artifacts as usize,
            shard_sizes.len() * lanes_set.len(),
            "{name} batch {batch}: every primed artifact is maintained"
        );
        let snapshot = entry.list();
        assert_eq!(
            snapshot.links(),
            mirror.snapshot().links(),
            "{name} batch {batch}: server and mirror applied different lists"
        );
        let oracle = listkit::serial::rank(&snapshot);
        let values: Vec<i64> = (0..snapshot.len() as i64).map(|i| (i % 29) - 14).collect();
        let scan_oracle = listkit::serial::scan(&snapshot, &values, &AddOp);
        for &shard in shard_sizes {
            for &lanes in lanes_set {
                let a = entry.artifacts().get_or_build(&snapshot, shard, lanes);
                assert_eq!(
                    a.rank(),
                    oracle,
                    "{name} batch {batch}: rank diverged shard={shard} lanes={lanes}"
                );
                assert_eq!(
                    a.scan(&values, &AddOp),
                    scan_oracle,
                    "{name} batch {batch}: scan diverged shard={shard} lanes={lanes}"
                );
            }
        }
    }
    assert_eq!(store.mutation_stats().mutations, batches as u64);
    drop(entry);
    store.drop_dataset(receipt.handle, CONN).expect("drop");
    assert_eq!(store.stats().resident_bytes, 0, "drop released list, mirror, and artifacts");
}

#[test]
fn mutated_datasets_match_serial_on_every_topology_lane_and_budget() {
    // The dynamic-lists acceptance matrix: the topology zoo × lanes
    // {1, 4, 8} × two shard budgets, each under a random mutation
    // sequence, byte-compared to serial after every batch. The planner
    // is free to pick incremental or rebuild per pass — the contract
    // is that the choice is invisible in the bytes.
    for n in [129usize, 1025, 20_000] {
        for (name, list) in topologies(n) {
            check_mutation_sequences(&name, list, SEED ^ n as u64, 5, &[64, 512], &[1, 4, 8]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential-oracle property for mutations: any topology, any
    /// size, any edit sequence — every maintained artifact stays
    /// byte-identical to a from-scratch serial solve.
    #[test]
    fn mutation_differential(n in 4usize..1500, topo in 0usize..5, seed in any::<u64>()) {
        let zoo = topologies(n);
        let (name, list) = zoo[topo % zoo.len()].clone();
        check_mutation_sequences(&name, list, seed, 4, &[7, 64], &[1, 4]);
    }
}

/// Nightly-depth random-mutation sweep: many more sequences over a
/// wider size range, run with `cargo test -- --include-ignored`.
#[test]
#[ignore = "deep mutation sweep; nightly CI runs it via --include-ignored"]
fn mutation_sweep_deep() {
    let mut seed = 0xDEC0_DE5Eu64;
    for case in 0..160 {
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = 4 + (next() % 5000) as usize;
        let zoo = topologies(n);
        let (name, list) = zoo[(next() as usize) % zoo.len()].clone();
        check_mutation_sequences(&name, list, next(), 6, &[16, 256], &[1, 4, 8]);
        let _ = case;
    }
}

/// The all-singleton stride topology really produces singleton
/// fragments (the adversarial property the name claims).
#[test]
fn stride_topology_is_all_singletons() {
    let n = 20_000;
    let stride = coprime_stride(n, 70);
    let list = gen::list_with_layout(n, Layout::Strided(stride), 1);
    let sharded = ShardedList::build(&list, 64);
    assert_eq!(sharded.fragment_count(), n, "every vertex must be its own fragment");
    assert_eq!(sharded.rank(), listkit::serial::rank(&list));
}
