//! Property-based tests over the whole stack (proptest).

use cray_list_ranking::prelude::*;
use listkit::gen;
use listkit::ops::{Affine, AffineOp};
use listkit::validate::validate_links;
use proptest::prelude::*;

/// Strategy: (list length, generator seed).
fn list_params() -> impl Strategy<Value = (usize, u64)> {
    (1usize..4000, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_lists_are_valid((n, seed) in list_params()) {
        let list = gen::random_list(n, seed);
        prop_assert!(validate_links(list.links(), list.head()).is_ok());
        prop_assert_eq!(list.len(), n);
    }

    #[test]
    fn ranks_are_a_permutation((n, seed) in list_params()) {
        let list = gen::random_list(n, seed);
        let mut ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
        ranks.sort_unstable();
        prop_assert!(ranks.iter().enumerate().all(|(i, &r)| r == i as u64));
    }

    #[test]
    fn every_algorithm_matches_serial_rank((n, seed) in list_params(), alg_ix in 0usize..5) {
        let list = gen::random_list(n, seed);
        let alg = Algorithm::ALL[alg_ix];
        prop_assert_eq!(
            HostRunner::new(alg).with_seed(seed ^ 0xabc).rank(&list),
            listkit::serial::rank(&list)
        );
    }

    #[test]
    fn sim_equals_host((n, seed) in (1usize..2000, any::<u64>()), alg_ix in 0usize..5, procs in 1usize..9) {
        let list = gen::random_list(n, seed);
        let alg = Algorithm::ALL[alg_ix];
        let host = HostRunner::new(alg).rank(&list);
        let sim = SimRunner::new(alg, procs).rank(&list);
        prop_assert_eq!(host, sim.out);
        prop_assert!(sim.cycles.get() > 0.0);
    }

    #[test]
    fn affine_scan_respects_list_order((n, seed) in (1usize..2000, any::<u64>()), coeffs in proptest::collection::vec((-3i64..4, -10i64..10), 1..2000)) {
        let n = n.min(coeffs.len());
        let list = gen::random_list(n, seed);
        let funcs: Vec<Affine> = coeffs[..n].iter().map(|&(a, b)| Affine::new(a, b)).collect();
        let got = HostRunner::new(Algorithm::ReidMiller).scan(&list, &funcs, &AffineOp);
        let want = listkit::serial::scan(&list, &funcs, &AffineOp);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_then_combine_reconstructs_inclusive((n, seed) in (1usize..3000, any::<u64>())) {
        // exclusive[v] ⊕ value[v] == inclusive[v] for every vertex.
        let list = gen::random_list(n, seed);
        let vals: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
        let ex = HostRunner::new(Algorithm::ReidMiller).scan(&list, &vals, &AddOp);
        let inc = listkit::serial::scan_inclusive(&list, &vals, &AddOp);
        for v in 0..n {
            prop_assert_eq!(ex[v] + vals[v], inc[v]);
        }
    }

    #[test]
    fn reorder_by_rank_is_traversal_order((n, seed) in list_params()) {
        let list = gen::random_list(n, seed);
        let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
        let data: Vec<u64> = (0..n as u64).collect();
        let reordered = listkit::serial::reorder_by_rank(&ranks, &data);
        let walk: Vec<u64> = list.iter().map(|v| v as u64).collect();
        prop_assert_eq!(reordered, walk);
    }

    #[test]
    fn sim_cycles_deterministic((n, seed) in (1usize..3000, any::<u64>())) {
        let list = gen::random_list(n, seed);
        let a = SimRunner::new(Algorithm::ReidMiller, 2).with_seed(seed).rank(&list);
        let b = SimRunner::new(Algorithm::ReidMiller, 2).with_seed(seed).rank(&list);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.element_ops, b.element_ops);
    }

    #[test]
    fn euler_tour_depths_and_sizes(n in 1usize..1500, seed in any::<u64>()) {
        let tree = Tree::random(n, seed);
        let runner = HostRunner::new(Algorithm::ReidMiller);
        prop_assert_eq!(
            cray_list_ranking::applications::euler::depths(&tree, &runner),
            tree.depths_serial()
        );
        prop_assert_eq!(
            cray_list_ranking::applications::euler::subtree_sizes(&tree, &runner),
            tree.subtree_sizes_serial()
        );
    }
}

/// The walker's default lane count and the cost model's mirror of it
/// must never drift apart (neither crate can import the other's).
#[test]
fn lane_constants_agree_across_crates() {
    assert_eq!(listkit::walk::DEFAULT_LANES, rankmodel::predict::DEFAULT_LANES);
}
